// Package cycle implements the maximum-length-cycle predicates of §5.3:
//
//   - cycle-at-least-c (Theorems 5.3/5.4): the graph has a simple cycle of
//     at least c nodes. Deterministic labels of O(log n) bits mark a long
//     cycle with cyclic indices; compiling gives O(log log n)-bit
//     certificates. The paper's lower bounds are Ω(log c) and Ω(log log c).
//
//   - cycle-at-most-c (Theorems 5.5/5.6): no simple cycle exceeds c nodes.
//     The predicate is co-NP-hard (for c = n−1 it is the complement of
//     Hamiltonian Cycle), so — as the paper notes — the universal scheme
//     with unbounded local computation is the best known; this package
//     exposes exactly that construction.
//
// The paper's P1 counts every dist-0 neighbor as a cycle neighbor, which
// breaks on maximum cycles with chords; per DESIGN.md §5 we apply the
// natural repair of identifying cycle neighbors by index adjacency.
package cycle

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// LongestCycle returns the number of nodes in a longest simple cycle of g,
// or 0 if g is acyclic. Exact exponential-time search (the predicate is
// NP-hard); intended for the moderate sizes of tests and experiments.
func LongestCycle(g *graph.Graph) int {
	if cyc := longestCycleFrom(g, -1); cyc != nil {
		return len(cyc)
	}
	return 0
}

// FindCycleAtLeast returns a simple cycle with at least c nodes as an
// ordered node sequence, or nil if none exists.
func FindCycleAtLeast(g *graph.Graph, c int) []int {
	if c < 3 {
		c = 3
	}
	cyc := longestCycleFrom(g, c)
	if cyc == nil || len(cyc) < c {
		return nil
	}
	return cyc
}

// longestCycleFrom searches for a longest simple cycle; if target > 0 the
// search stops as soon as a cycle of at least target nodes is found.
// Each cycle is canonicalized by its minimum node, so the search explores
// paths starting at s that only visit nodes > s.
func longestCycleFrom(g *graph.Graph, target int) []int {
	n := g.N()
	var best []int
	visited := make([]bool, n)
	var path []int

	var extend func(s, v int) bool // returns true when target reached
	extend = func(s, v int) bool {
		for p := 1; p <= g.Degree(v); p++ {
			u := g.Neighbor(v, p).To
			if u == s && len(path) >= 3 {
				if len(path) > len(best) {
					best = append([]int(nil), path...)
					if target > 0 && len(best) >= target {
						return true
					}
				}
				continue
			}
			if u <= s || visited[u] {
				continue
			}
			visited[u] = true
			path = append(path, u)
			if extend(s, u) {
				return true
			}
			path = path[:len(path)-1]
			visited[u] = false
		}
		return false
	}

	for s := 0; s < n; s++ {
		if target > 0 && len(best) >= target {
			break
		}
		// Upper bound prune: a cycle through s only uses nodes >= s.
		if n-s < 3 || n-s <= len(best) {
			break
		}
		visited[s] = true
		path = append(path[:0], s)
		if extend(s, s) {
			break
		}
		visited[s] = false
	}
	return best
}

// AtLeastPredicate decides cycle-at-least-c.
type AtLeastPredicate struct {
	C int
}

var _ core.Predicate = AtLeastPredicate{}

// Name implements core.Predicate.
func (p AtLeastPredicate) Name() string { return fmt.Sprintf("cycle-at-least-%d", p.C) }

// Eval implements core.Predicate.
func (p AtLeastPredicate) Eval(c *graph.Config) bool {
	return FindCycleAtLeast(c.G, p.C) != nil
}

// AtMostPredicate decides cycle-at-most-c.
type AtMostPredicate struct {
	C int
}

var _ core.Predicate = AtMostPredicate{}

// Name implements core.Predicate.
func (p AtMostPredicate) Name() string { return fmt.Sprintf("cycle-at-most-%d", p.C) }

// Eval implements core.Predicate.
func (p AtMostPredicate) Eval(c *graph.Config) bool {
	return LongestCycle(c.G) <= p.C
}

// NewAtMostPLS returns the universal scheme for cycle-at-most-c — per the
// paper the best available, since an efficient scheme would put a co-NP-hard
// problem in NP.
func NewAtMostPLS(c int) core.PLS { return core.UniversalPLS(AtMostPredicate{C: c}) }

// NewAtMostRPLS returns the compiled universal scheme for cycle-at-most-c
// with O(log n + log k)-bit certificates.
func NewAtMostRPLS(c int) core.RPLS { return core.UniversalRPLS(AtMostPredicate{C: c}) }

const idxBits = 32

// NewPLS returns the deterministic O(log n) scheme of Theorem 5.3 for
// cycle-at-least-c.
func NewPLS(c int) core.PLS { return pls{c: c} }

// NewRPLS returns the compiled O(log log n) scheme of Theorem 5.3.
func NewRPLS(c int) core.RPLS { return core.Compile(NewPLS(c)) }

type pls struct {
	c int
}

var _ core.PLS = pls{}

func (s pls) Name() string { return fmt.Sprintf("cycle-at-least-%d-det", s.c) }

type label struct {
	dist  uint64 // distance to the marked cycle; 0 = on the cycle
	index uint64 // position on the cycle (meaningful only when dist = 0)
}

func (l label) encode() core.Label {
	var w bitstring.Writer
	w.WriteUint(l.dist, idxBits)
	w.WriteUint(l.index, idxBits)
	return w.String()
}

func decode(s core.Label) (label, bool) {
	r := bitstring.NewReader(s)
	var l label
	var err error
	if l.dist, err = r.ReadUint(idxBits); err != nil {
		return l, false
	}
	if l.index, err = r.ReadUint(idxBits); err != nil {
		return l, false
	}
	return l, r.Remaining() == 0
}

func (s pls) Label(c *graph.Config) ([]core.Label, error) {
	cyc := FindCycleAtLeast(c.G, s.c)
	if cyc == nil {
		return nil, core.ErrIllegalConfig
	}
	n := c.G.N()
	onCycle := make([]int, n)
	for i := range onCycle {
		onCycle[i] = -1
	}
	for i, v := range cyc {
		onCycle[v] = i
	}
	// Multi-source BFS from the cycle for the dist component.
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	var queue []int
	for _, v := range cyc {
		dist[v] = 0
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for p := 1; p <= c.G.Degree(v); p++ {
			u := c.G.Neighbor(v, p).To
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	out := make([]core.Label, n)
	for v := 0; v < n; v++ {
		if dist[v] == -1 {
			return nil, fmt.Errorf("cycle: configuration is not connected")
		}
		l := label{dist: uint64(dist[v])}
		if onCycle[v] >= 0 {
			l.index = uint64(onCycle[v])
		}
		out[v] = l.encode()
	}
	return out, nil
}

// successor reports whether b's index follows a's on a cycle of length at
// least c: either b = a+1, or the wrap b = 0 with a >= c−1.
func successor(a, b uint64, c int) bool {
	return b == a+1 || (b == 0 && a >= uint64(c-1))
}

func (s pls) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, ok := decode(own)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	ns := make([]label, view.Deg)
	for i, nl := range nbrs {
		n, ok := decode(nl)
		if !ok {
			return false
		}
		ns[i] = n
	}
	if me.dist > 0 {
		// P2: someone strictly closer to the cycle.
		for _, n := range ns {
			if n.dist == me.dist-1 {
				return true
			}
		}
		return false
	}
	// P1 (with the chord repair): among dist-0 neighbors there is an index
	// successor and an index predecessor.
	hasSucc, hasPred := false, false
	for _, n := range ns {
		if n.dist != 0 {
			continue
		}
		if successor(me.index, n.index, s.c) {
			hasSucc = true
		}
		if successor(n.index, me.index, s.c) {
			hasPred = true
		}
	}
	return hasSucc && hasPred
}
