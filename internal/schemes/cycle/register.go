package cycle

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:              "cycleatleast",
		Description:       "a simple cycle of >= C nodes exists (Theorem 5.3)",
		Det:               func(p engine.Params) engine.Scheme { return engine.FromPLS(NewPLS(p.C)) },
		Rand:              func(p engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS(p.C)) },
		DetParameterized:  true,
		RandParameterized: true,
	})
	engine.Register(engine.Entry{
		Name:              "cycleatmost",
		Description:       "no simple cycle exceeds C nodes (Theorem 5.6, via the universal scheme)",
		Det:               func(p engine.Params) engine.Scheme { return engine.FromPLS(NewAtMostPLS(p.C)) },
		Rand:              func(p engine.Params) engine.Scheme { return engine.FromRPLS(NewAtMostRPLS(p.C)) },
		DetParameterized:  true,
		RandParameterized: true,
	})
}
