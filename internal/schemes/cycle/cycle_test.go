package cycle_test

import (
	"testing"

	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/cycle"
	"rpls/internal/schemes/schemetest"
)

func TestLongestCycleKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    func(t *testing.T) *graph.Graph
		want int
	}{
		{"path", func(*testing.T) *graph.Graph { return graph.Path(8) }, 0},
		{"tree", func(*testing.T) *graph.Graph { return graph.RandomTree(12, prng.New(1)) }, 0},
		{"C5", func(t *testing.T) *graph.Graph { return mustCycle(t, 5) }, 5},
		{"K4", func(*testing.T) *graph.Graph { return graph.Complete(4) }, 4},
		{"K6", func(*testing.T) *graph.Graph { return graph.Complete(6) }, 6},
		{"figure-eight 5+4", func(t *testing.T) *graph.Graph {
			g, err := graph.TwoCyclesSharingNode(5, 4)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}, 5},
		{"cycle with hub", func(t *testing.T) *graph.Graph {
			g, err := graph.CycleWithHub(12, 7)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}, 7},
		{"chain of cycles", func(t *testing.T) *graph.Graph {
			g, err := graph.ChainOfCycles(12, 4)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}, 4},
	}
	for _, c := range cases {
		if got := cycle.LongestCycle(c.g(t)); got != c.want {
			t.Errorf("%s: LongestCycle = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestLongestCycleChordedRing(t *testing.T) {
	// Figure 2(a): the full ring is still the longest cycle.
	g, err := graph.CycleWithChords(10)
	if err != nil {
		t.Fatal(err)
	}
	if got := cycle.LongestCycle(g); got != 10 {
		t.Errorf("LongestCycle = %d, want 10", got)
	}
}

func TestFindCycleAtLeastReturnsValidCycle(t *testing.T) {
	rng := prng.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(8)
		g := graph.RandomConnected(n, 3+rng.Intn(n), rng)
		want := cycle.LongestCycle(g)
		if want == 0 {
			continue
		}
		cyc := cycle.FindCycleAtLeast(g, 3)
		if cyc == nil {
			t.Fatalf("trial %d: no cycle found though longest is %d", trial, want)
		}
		// The returned sequence must be a genuine simple cycle.
		seen := make(map[int]bool)
		for i, v := range cyc {
			if seen[v] {
				t.Fatalf("trial %d: repeated node %d", trial, v)
			}
			seen[v] = true
			if !g.HasEdge(v, cyc[(i+1)%len(cyc)]) {
				t.Fatalf("trial %d: missing edge on returned cycle", trial)
			}
		}
	}
}

func TestFindCycleAtLeastRespectsThreshold(t *testing.T) {
	g, err := graph.CycleWithHub(14, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cyc := cycle.FindCycleAtLeast(g, 9); cyc != nil {
		t.Errorf("found %d-cycle though longest is 8", len(cyc))
	}
	if cyc := cycle.FindCycleAtLeast(g, 8); len(cyc) < 8 {
		t.Errorf("failed to find the 8-cycle: got %v", cyc)
	}
}

func TestAtLeastPredicate(t *testing.T) {
	g, err := graph.CycleWithHub(15, 6)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.NewConfig(g)
	if !(cycle.AtLeastPredicate{C: 6}).Eval(c) {
		t.Error("cycle-at-least-6 rejected a graph with a 6-cycle")
	}
	if (cycle.AtLeastPredicate{C: 7}).Eval(c) {
		t.Error("cycle-at-least-7 accepted a graph whose longest cycle is 6")
	}
}

func TestCompleteness(t *testing.T) {
	rng := prng.New(3)
	for _, tc := range []struct {
		n, c int
	}{{9, 5}, {14, 8}, {20, 12}} {
		g, err := graph.CycleWithHub(tc.n, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		cfg := graph.NewConfig(g)
		cfg.AssignRandomIDs(rng)
		h := schemetest.New(uint64(tc.n))
		h.LegalAccepted(t, cycle.NewPLS(tc.c), cfg)
		h.LegalAcceptedRPLS(t, cycle.NewRPLS(tc.c), cfg, 20)
	}
	// Hamiltonian case on a clique.
	cfg := graph.NewConfig(graph.Complete(7))
	schemetest.New(7).LegalAccepted(t, cycle.NewPLS(7), cfg)
}

func TestCompletenessLongerCycleThanC(t *testing.T) {
	// The wrap rule must allow cycles strictly longer than c.
	g := mustCycle(t, 12)
	cfg := graph.NewConfig(g)
	schemetest.New(5).LegalAccepted(t, cycle.NewPLS(5), cfg)
}

func TestProverRefusesShortCycles(t *testing.T) {
	g, err := graph.CycleWithHub(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := schemetest.New(1)
	h.ProverRefuses(t, cycle.NewPLS(6), graph.NewConfig(g))
	h.ProverRefuses(t, cycle.NewPLS(3), graph.NewConfig(graph.Path(5)))
}

func TestSoundnessFigureEight(t *testing.T) {
	// Two 5-cycles sharing a node have longest cycle 5 < 9 = c; no labeling
	// may convince the verifier of a 9-cycle (the index wrap forbids
	// gluing the loops together; see the package tests' adversary).
	g, err := graph.TwoCyclesSharingNode(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	illegal := graph.NewConfig(g)
	schemetest.New(4).RandomLabelsRejected(t, cycle.NewPLS(9), illegal, 300, 70)
}

func TestSoundnessTransplantCrossedHub(t *testing.T) {
	// Theorem 5.4's scenario: crossing two cycle edges of the hub graph
	// splits the long cycle; the old labels must not survive.
	g, err := graph.CycleWithHub(16, 12)
	if err != nil {
		t.Fatal(err)
	}
	legal := graph.NewConfig(g)
	det := cycle.NewPLS(12)
	labels, err := det.Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	crossed, err := legal.CrossConfig(graph.EdgePair{U1: 3, V1: 4, U2: 9, V2: 10})
	if err != nil {
		t.Fatal(err)
	}
	if (cycle.AtLeastPredicate{C: 12}).Eval(crossed) {
		t.Fatal("crossing failed to destroy all 12-cycles")
	}
	if engine.Verify(engine.FromPLS(det), crossed, labels).Accepted {
		t.Error("crossed hub accepted with original labels")
	}
	rand := cycle.NewRPLS(12)
	randLabels, err := rand.Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	if rate := engine.Acceptance(engine.FromRPLS(rand), crossed, randLabels, 300, 5); rate > 1.0/3 {
		t.Errorf("randomized scheme accepted crossed hub at rate %v", rate)
	}
}

func TestLabelAndCertSizes(t *testing.T) {
	for _, n := range []int{12, 24} {
		g, err := graph.CycleWithHub(n, n/2)
		if err != nil {
			t.Fatal(err)
		}
		cfg := graph.NewConfig(g)
		h := schemetest.New(uint64(n))
		h.LabelBitsAtMost(t, cycle.NewPLS(n/2), cfg, 64)
		h.CertBitsAtMost(t, cycle.NewRPLS(n/2), cfg, 40)
	}
}

func TestAtMostPredicate(t *testing.T) {
	g, err := graph.ChainOfCycles(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.NewConfig(g)
	if !(cycle.AtMostPredicate{C: 4}).Eval(c) {
		t.Error("chain of 4-cycles rejected by cycle-at-most-4")
	}
	if !(cycle.AtMostPredicate{C: 7}).Eval(c) {
		t.Error("chain of 4-cycles rejected by cycle-at-most-7")
	}
	if (cycle.AtMostPredicate{C: 3}).Eval(c) {
		t.Error("chain of 4-cycles accepted by cycle-at-most-3")
	}
}

func TestAtMostUniversalScheme(t *testing.T) {
	// Completeness of the universal construction on the Figure 5 family.
	g, err := graph.ChainOfCycles(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := graph.NewConfig(g)
	h := schemetest.New(4)
	h.LegalAccepted(t, cycle.NewAtMostPLS(4), cfg)
	h.LegalAcceptedRPLS(t, cycle.NewAtMostRPLS(4), cfg, 10)

	// Soundness: cross two edges from distinct cycles, fusing them into an
	// 8-cycle (Figure 5b); old labels must die.
	det := cycle.NewAtMostPLS(4)
	labels, err := det.Label(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crossed, err := cfg.CrossConfig(graph.EdgePair{U1: 1, V1: 2, U2: 5, V2: 6})
	if err != nil {
		t.Fatal(err)
	}
	if (cycle.AtMostPredicate{C: 4}).Eval(crossed) {
		t.Fatal("crossing failed to create a long cycle")
	}
	if engine.Verify(engine.FromPLS(det), crossed, labels).Accepted {
		t.Error("crossed chain accepted by universal scheme with stale labels")
	}
}

func mustCycle(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
