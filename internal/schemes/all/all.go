// Package all is the scheme registry: a blank import of every scheme
// package under internal/schemes/, so that one import —
//
//	import _ "rpls/internal/schemes/all"
//
// — populates the engine registry with every predicate the module
// implements. Binaries, examples, and the registry-driven conformance
// battery import this package instead of hand-maintaining per-scheme
// import lists that silently go stale when a scheme is added.
//
// The plsvet register analyzer enforces the contract from both sides:
// every package under internal/schemes/ must call engine.Register from an
// init() AND appear in this import block, so a new scheme cannot compile
// without becoming visible to the conformance battery, the campaign cross
// products, and the CLIs.
package all

import (
	_ "rpls/internal/schemes/acyclicity"
	_ "rpls/internal/schemes/biconn"
	_ "rpls/internal/schemes/coloring"
	_ "rpls/internal/schemes/cycle"
	_ "rpls/internal/schemes/flow"
	_ "rpls/internal/schemes/leader"
	_ "rpls/internal/schemes/mst"
	_ "rpls/internal/schemes/spanningtree"
	_ "rpls/internal/schemes/stconn"
	_ "rpls/internal/schemes/symmetry"
	_ "rpls/internal/schemes/uniform"
)
