// Package spanningtree implements the introductory example of the paper
// (§1): certifying that a set of parent pointers {p(v)} forms a spanning
// tree of the network.
//
// The classic O(log n)-bit proof labels every node with the identity of the
// root and its distance to it; a node accepts when it agrees with all
// neighbors on the root, its distance is one more than its parent's, and
// the root itself has distance 0. Compiling the scheme (Theorem 3.1) gives
// an O(log log n)-bit randomized certificate.
package spanningtree

import (
	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// Predicate decides whether the parent ports in the node states form a
// spanning tree of the graph: exactly one root, and every node reaches it
// by following parent pointers without cycles.
type Predicate struct{}

var _ core.Predicate = Predicate{}

// Name implements core.Predicate.
func (Predicate) Name() string { return "spanning-tree" }

// Eval implements core.Predicate.
func (Predicate) Eval(c *graph.Config) bool {
	n := c.G.N()
	if n == 0 {
		return false
	}
	root := -1
	for v := 0; v < n; v++ {
		p := c.States[v].Parent
		if p == 0 {
			if root != -1 {
				return false // two roots
			}
			root = v
		} else if p < 1 || p > c.G.Degree(v) {
			return false
		}
	}
	if root == -1 {
		return false
	}
	// Every node must reach the root; memoize along the way.
	status := make([]int8, n) // 0 unknown, 1 reaches root, 2 in progress
	status[root] = 1
	for v := 0; v < n; v++ {
		var path []int
		cur := v
		for status[cur] == 0 {
			status[cur] = 2
			path = append(path, cur)
			cur = c.G.Neighbor(cur, c.States[cur].Parent).To
			if status[cur] == 2 {
				return false // cycle among parent pointers
			}
		}
		ok := status[cur] == 1
		for _, u := range path {
			if ok {
				status[u] = 1
			} else {
				return false
			}
		}
	}
	return true
}

const distBits = 32

// NewPLS returns the deterministic (id(root), dist) scheme of §1.
func NewPLS() core.PLS { return pls{} }

type pls struct{}

var _ core.PLS = pls{}

func (pls) Name() string { return "spanning-tree-det" }

func (pls) Label(c *graph.Config) ([]core.Label, error) {
	if !(Predicate{}).Eval(c) {
		return nil, core.ErrIllegalConfig
	}
	n := c.G.N()
	root := -1
	for v := 0; v < n; v++ {
		if c.States[v].Parent == 0 {
			root = v
		}
	}
	dist := make([]int, n)
	for v := 0; v < n; v++ {
		d := 0
		for cur := v; cur != root; cur = c.G.Neighbor(cur, c.States[cur].Parent).To {
			d++
		}
		dist[v] = d
	}
	labels := make([]core.Label, n)
	for v := 0; v < n; v++ {
		var w bitstring.Writer
		w.WriteUint(c.States[root].ID, 64)
		w.WriteUint(uint64(dist[v]), distBits)
		labels[v] = w.String()
	}
	return labels, nil
}

type decoded struct {
	rootID uint64
	dist   uint64
}

func decode(l core.Label) (decoded, bool) {
	r := bitstring.NewReader(l)
	rootID, err := r.ReadUint(64)
	if err != nil {
		return decoded{}, false
	}
	dist, err := r.ReadUint(distBits)
	if err != nil || r.Remaining() != 0 {
		return decoded{}, false
	}
	return decoded{rootID: rootID, dist: dist}, true
}

func (pls) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, ok := decode(own)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	ns := make([]decoded, view.Deg)
	for i, nl := range nbrs {
		n, ok := decode(nl)
		if !ok {
			return false
		}
		// Everyone must agree on the root identity (§1).
		if n.rootID != me.rootID {
			return false
		}
		ns[i] = n
	}
	p := view.State.Parent
	if p == 0 {
		// The root: p(r) = ⊥, checks d(r) = 0 and that it is the named root.
		return me.dist == 0 && me.rootID == view.State.ID
	}
	if p < 1 || p > view.Deg {
		return false
	}
	// d(p(v)) = d(v) − 1.
	return me.dist >= 1 && ns[p-1].dist == me.dist-1
}

// NewRPLS returns the compiled randomized scheme with O(log log n)-bit
// certificates.
func NewRPLS() core.RPLS { return core.Compile(NewPLS()) }
