package spanningtree_test

import (
	"testing"

	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/schemetest"
	"rpls/internal/schemes/spanningtree"
)

// treeConfig builds a configuration whose parent pointers are a BFS
// spanning tree of g rooted at root.
func treeConfig(t *testing.T, g *graph.Graph, root int) *graph.Config {
	t.Helper()
	c := graph.NewConfig(g)
	parents := g.SpanningTreeParents(root)
	if parents == nil {
		t.Fatal("graph not connected")
	}
	for v, p := range parents {
		c.States[v].Parent = p
	}
	return c
}

func TestPredicateAcceptsSpanningTrees(t *testing.T) {
	rng := prng.New(1)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := graph.RandomConnected(n, rng.Intn(n), rng)
		c := treeConfig(t, g, rng.Intn(n))
		if !(spanningtree.Predicate{}).Eval(c) {
			t.Fatalf("trial %d: BFS tree rejected by predicate", trial)
		}
	}
}

func TestPredicateRejectsTwoRoots(t *testing.T) {
	c := treeConfig(t, graph.Path(5), 0)
	c.States[3].Parent = 0 // second root; pointer structure now a forest
	if (spanningtree.Predicate{}).Eval(c) {
		t.Error("two-root forest accepted as spanning tree")
	}
}

func TestPredicateRejectsParentCycle(t *testing.T) {
	g, err := graph.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.NewConfig(g)
	// Everyone points clockwise: a 1-factor with a cycle, no root.
	for v := 0; v < 4; v++ {
		p, _ := c.G.PortTo(v, (v+1)%4)
		c.States[v].Parent = p
	}
	if (spanningtree.Predicate{}).Eval(c) {
		t.Error("cyclic parent pointers accepted")
	}
}

func TestCompletenessAcrossTopologies(t *testing.T) {
	rng := prng.New(2)
	det := spanningtree.NewPLS()
	rand := spanningtree.NewRPLS()
	topologies := []*graph.Graph{
		graph.Path(12),
		graph.Star(9),
		graph.Complete(7),
		graph.RandomConnected(25, 20, rng),
	}
	for i, g := range topologies {
		c := treeConfig(t, g, 0)
		c.AssignRandomIDs(rng)
		h := schemetest.New(uint64(i))
		h.LegalAccepted(t, det, c)
		h.LegalAcceptedRPLS(t, rand, c, 40+i)
	}
}

func TestProverRefusesIllegal(t *testing.T) {
	c := treeConfig(t, graph.Path(5), 0)
	c.States[2].Parent = 0 // break: two roots
	schemetest.New(1).ProverRefuses(t, spanningtree.NewPLS(), c)
}

func TestSoundnessTwoRootsTransplant(t *testing.T) {
	g := graph.RandomConnected(12, 8, prng.New(3))
	legal := treeConfig(t, g, 0)
	illegal := legal.Clone()
	// Re-root one subtree at itself: the pointer set is now a two-tree
	// forest, not a spanning tree.
	for v := 1; v < 12; v++ {
		if illegal.States[v].Parent != 0 {
			illegal.States[v].Parent = 0
			break
		}
	}
	h := schemetest.New(3)
	h.TransplantRejected(t, spanningtree.NewPLS(), legal, illegal)
	h.TransplantRejectedRPLS(t, spanningtree.NewRPLS(), legal, illegal, 300, 100)
}

func TestSoundnessPointerCycleAllLabelings(t *testing.T) {
	// On a 4-cycle with clockwise pointers, no labeling may be accepted:
	// dist must strictly decrease along pointers, which a cycle forbids.
	g, err := graph.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	illegal := graph.NewConfig(g)
	for v := 0; v < 4; v++ {
		p, _ := illegal.G.PortTo(v, (v+1)%4)
		illegal.States[v].Parent = p
	}
	schemetest.New(4).RandomLabelsRejected(t, spanningtree.NewPLS(), illegal, 300, 100)

	// Structured attack: consistent rootID with crafted distances cannot
	// satisfy d(p(v)) = d(v) − 1 around a cycle; verify a best-effort
	// assignment (increasing distances) still fails.
	legalPath := treeConfig(t, graph.Path(4), 0)
	labels, err := spanningtree.NewPLS().Label(legalPath)
	if err != nil {
		t.Fatal(err)
	}
	if engine.Verify(engine.FromPLS(spanningtree.NewPLS()), illegal, labels).Accepted {
		t.Error("path labels fooled the cycle")
	}
}

func TestLabelAndCertSizes(t *testing.T) {
	rng := prng.New(5)
	for _, n := range []int{8, 64, 256} {
		g := graph.RandomConnected(n, n/2, rng)
		c := treeConfig(t, g, 0)
		// Θ(log n): 64-bit identity + 32-bit distance.
		h := schemetest.New(uint64(n))
		h.LabelBitsAtMost(t, spanningtree.NewPLS(), c, 96)
		// Compiled: O(log κ) with κ = 96.
		h.CertBitsAtMost(t, spanningtree.NewRPLS(), c, 40)
	}
}

func TestSingleNodeTree(t *testing.T) {
	c := graph.NewConfig(graph.New(1))
	if !(spanningtree.Predicate{}).Eval(c) {
		t.Fatal("single root node should satisfy the predicate")
	}
	schemetest.New(1).LegalAccepted(t, spanningtree.NewPLS(), c)
}
