package spanningtree_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/schemes/spanningtree"
)

// TestExhaustiveAdversaryOnPointerCycle checks ∀-labels soundness directly:
// on a 4-cycle whose parent pointers run clockwise (a 1-factor with no
// root), no assignment of (rootID ∈ real ids, dist ∈ [0, n+1]) labels is
// accepted. Distances outside [0, n+1] cannot help the adversary: the only
// distance relations the verifier evaluates are d(parent) = d(v) − 1 and
// d = 0, both preserved by translating an accepting assignment so its
// minimum is 0, after which a decreasing pointer chain of length > n+1
// would need n+2 distinct values on n nodes.
func TestExhaustiveAdversaryOnPointerCycle(t *testing.T) {
	const n = 4
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := graph.NewConfig(g)
	for v := 0; v < n; v++ {
		p, _ := cfg.G.PortTo(v, (v+1)%n)
		cfg.States[v].Parent = p
	}
	det := spanningtree.NewPLS()
	maxDist := n + 1
	ids := make([]uint64, n)
	for v := 0; v < n; v++ {
		ids[v] = cfg.States[v].ID
	}
	choices := n * (maxDist + 1)
	total := 1
	for i := 0; i < n; i++ {
		total *= choices
	}
	labels := make([]core.Label, n)
	for code := 0; code < total; code++ {
		c := code
		for v := 0; v < n; v++ {
			pick := c % choices
			c /= choices
			var w bitstring.Writer
			w.WriteUint(ids[pick/(maxDist+1)], 64)
			w.WriteUint(uint64(pick%(maxDist+1)), 32)
			labels[v] = w.String()
		}
		if acceptedSequential(det, cfg, labels) {
			t.Fatalf("labeling %d accepted a rootless pointer cycle", code)
		}
	}
	t.Logf("all %d labelings rejected", total)
}

// acceptedSequential runs the deterministic verifier without goroutines;
// the exhaustive sweep calls it hundreds of thousands of times.
func acceptedSequential(det core.PLS, cfg *graph.Config, labels []core.Label) bool {
	for v := 0; v < cfg.G.N(); v++ {
		deg := cfg.G.Degree(v)
		nbrs := make([]core.Label, deg)
		for i := 0; i < deg; i++ {
			nbrs[i] = labels[cfg.G.Neighbor(v, i+1).To]
		}
		if !det.Verify(core.ViewOf(cfg, v), labels[v], nbrs) {
			return false
		}
	}
	return true
}
