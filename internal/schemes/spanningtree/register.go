package spanningtree

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:        "spanningtree",
		Description: "parent pointers form a spanning tree (§1 example)",
		Det:         func(engine.Params) engine.Scheme { return engine.FromPLS(NewPLS()) },
		Rand:        func(engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS()) },
	})
}
