package flow_test

import (
	"testing"

	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/flow"
	"rpls/internal/schemes/schemetest"
)

// stConfig marks s and t in a configuration.
func stConfig(g *graph.Graph, s, t int) *graph.Config {
	c := graph.NewConfig(g)
	c.States[s].Flags |= graph.FlagSource
	c.States[t].Flags |= graph.FlagTarget
	return c
}

// bruteEdgeConnectivity computes the s–t max flow on unit capacities by
// counting edge-disjoint paths greedily over all subsets — instead we use
// the simplest correct oracle: repeated BFS path removal IS Ford-Fulkerson
// on unit capacities only if augmenting via residual; so the brute force
// here enumerates via Menger on small graphs through MaxFlowUnit of a
// rebuilt graph... To stay independent, we verify against known topologies
// instead.
func TestMaxFlowKnownTopologies(t *testing.T) {
	cases := []struct {
		name string
		g    func(t *testing.T) *graph.Graph
		s, t int
		want int
	}{
		{"path", func(*testing.T) *graph.Graph { return graph.Path(5) }, 0, 4, 1},
		{"cycle", func(t *testing.T) *graph.Graph { return mustCycle(t, 6) }, 0, 3, 2},
		{"K4", func(*testing.T) *graph.Graph { return graph.Complete(4) }, 0, 3, 3},
		{"K6", func(*testing.T) *graph.Graph { return graph.Complete(6) }, 1, 4, 5},
		{"star", func(*testing.T) *graph.Graph { return graph.Star(6) }, 1, 2, 1},
		{"two cycles shared node", func(t *testing.T) *graph.Graph {
			g, err := graph.TwoCyclesSharingNode(4, 4)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}, 1, 4, 2}, // wait: nodes 1 (first cycle) and 4... see below
	}
	for _, c := range cases {
		g := c.g(t)
		cfg := stConfig(g, c.s, c.t)
		got, _, _, err := flow.MaxFlowUnit(cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if c.name == "two cycles shared node" {
			// s=1 in cycle A, t=4 in cycle B (A has nodes 0..3, B has 0,4,5,6):
			// every path passes node 0, but edge connectivity is 2.
			if got != 2 {
				t.Errorf("%s: flow = %d, want 2", c.name, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("%s: flow = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestMaxFlowMinCutAgree(t *testing.T) {
	rng := prng.New(1)
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(15)
		g := graph.RandomConnected(n, rng.Intn(2*n), rng)
		s := rng.Intn(n)
		t2 := (s + 1 + rng.Intn(n-1)) % n
		cfg := stConfig(g, s, t2)
		value, _, side, err := flow.MaxFlowUnit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !side[s] || side[t2] {
			t.Fatal("cut does not separate s from t")
		}
		crossing := 0
		for _, e := range g.Edges() {
			if side[e.U] != side[e.V] {
				crossing++
			}
		}
		if crossing != value {
			t.Fatalf("trial %d: cut %d edges but flow %d", trial, crossing, value)
		}
	}
}

func TestPredicate(t *testing.T) {
	cfg := stConfig(graph.Complete(4), 0, 3)
	if !(flow.Predicate{K: 3}).Eval(cfg) {
		t.Error("3-flow rejected on K4")
	}
	if (flow.Predicate{K: 2}).Eval(cfg) {
		t.Error("2-flow accepted on K4")
	}
}

func TestCompleteness(t *testing.T) {
	rng := prng.New(2)
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(14)
		g := graph.RandomConnected(n, rng.Intn(3*n), rng)
		s := 0
		t2 := n - 1
		cfg := stConfig(g, s, t2)
		cfg.AssignRandomIDs(rng)
		k, _, _, err := flow.MaxFlowUnit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := schemetest.New(uint64(trial))
		h.LegalAccepted(t, flow.NewPLS(k), cfg)
		h.LegalAcceptedRPLS(t, flow.NewRPLS(k), cfg, 20)
	}
}

func TestProverRefusesWrongK(t *testing.T) {
	cfg := stConfig(graph.Complete(4), 0, 3)
	h := schemetest.New(1)
	h.ProverRefuses(t, flow.NewPLS(2), cfg)
	h.ProverRefuses(t, flow.NewPLS(4), cfg)
}

func TestSoundnessWrongKTransplant(t *testing.T) {
	// Claim K on a graph whose true flow is K−1 by transplanting labels
	// from a graph with flow K.
	legal := stConfig(graph.Complete(4), 0, 3) // flow 3
	g, err := graph.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	illegal := stConfig(g, 0, 2) // flow 2 — but different degrees, easy.
	_ = illegal
	// Stronger: same topology, remove one edge to drop the flow.
	g2, err := graph.Complete(4).RemoveEdge(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	illegal2 := stConfig(g2, 0, 3) // flow 2
	if (flow.Predicate{K: 3}).Eval(illegal2) {
		t.Fatal("setup: flow should be 2")
	}
	h := schemetest.New(3)
	h.RandomLabelsRejected(t, flow.NewPLS(3), illegal2, 200, 200)

	labels, err := flow.NewPLS(3).Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	_ = labels
	h.TransplantRejectedRPLS(t, flow.NewRPLS(3), legal, legalWithBrokenEdge(t), 100, 33)
}

// legalWithBrokenEdge returns K4 with s=0, t=3 but one incident edge of t
// missing, dropping the max flow to 2 while keeping node count.
func legalWithBrokenEdge(t *testing.T) *graph.Config {
	t.Helper()
	g, err := graph.Complete(4).RemoveEdge(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return stConfig(g, 0, 3)
}

func TestSoundnessOverclaimOnPath(t *testing.T) {
	// A path has flow exactly 1; claiming 2 must be impossible under any
	// labels.
	illegal := stConfig(graph.Path(6), 0, 5)
	schemetest.New(6).RandomLabelsRejected(t, flow.NewPLS(2), illegal, 300, 150)
}

func TestLabelSizeScalesWithK(t *testing.T) {
	// O(k log n): larger k means proportionally larger labels at s.
	rng := prng.New(3)
	_ = rng
	for _, k := range []int{2, 4, 6} {
		g := graph.Complete(k + 1)
		cfg := stConfig(g, 0, k)
		h := schemetest.New(uint64(k))
		h.LabelBitsAtMost(t, flow.NewPLS(k), cfg, 40+k*(16+32+34+20))
		certBound := 6*schemetest.Log2Ceil(40+k*110) + 24
		h.CertBitsAtMost(t, flow.NewRPLS(k), cfg, certBound)
	}
}

func mustCycle(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
