package flow

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:              "flow",
		Description:       "maximum s-t flow equals K (§5.2)",
		Det:               func(p engine.Params) engine.Scheme { return engine.FromPLS(NewPLS(p.K)) },
		Rand:              func(p engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS(p.K)) },
		DetParameterized:  true,
		RandParameterized: true,
	})
}
