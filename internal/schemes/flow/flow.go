// Package flow implements the k-flow predicate discussed in §5.2 of the
// paper: deciding whether the maximum s–t flow equals exactly k. On
// unit-capacity (simple) graphs this is s–t edge connectivity.
//
// The deterministic scheme uses O(k log n)-bit labels, as in [31]: the
// prover decomposes a maximum flow into k edge-disjoint s–t trails and
// writes onto each node the (path id, position, in-port, out-port) of every
// trail through it, plus one bit marking the node's side of a minimum cut.
// Locally: trails advance by matching (id, position) with the neighbor on
// the recorded port, each port carries at most one trail (edge-
// disjointness), trails may terminate only at t, and every cut-crossing
// edge carries exactly one trail leaving S, with none returning. Max-flow/
// min-cut complementary slackness then pins the flow value to exactly k.
//
// Compiling (Theorem 3.1) yields certificates of O(log k + log log n) bits,
// the bound stated in §5.2.
package flow

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// Endpoints locates the unique source and target nodes. The family F for
// this predicate consists of configurations with exactly one of each.
func Endpoints(c *graph.Config) (s, t int, err error) {
	s, t = -1, -1
	for v, st := range c.States {
		if st.Flags&graph.FlagSource != 0 {
			if s != -1 {
				return 0, 0, fmt.Errorf("flow: multiple source nodes")
			}
			s = v
		}
		if st.Flags&graph.FlagTarget != 0 {
			if t != -1 {
				return 0, 0, fmt.Errorf("flow: multiple target nodes")
			}
			t = v
		}
	}
	if s == -1 || t == -1 || s == t {
		return 0, 0, fmt.Errorf("flow: need distinct source and target")
	}
	return s, t, nil
}

// MaxFlowUnit computes the maximum s–t flow with unit capacities on every
// edge (Edmonds–Karp) and returns the flow value, the per-edge flow
// (flow[v][port-1] = +1 if one unit leaves v through that port), and the
// source side of a minimum cut.
func MaxFlowUnit(c *graph.Config) (value int, flow [][]int8, sourceSide []bool, err error) {
	s, t, err := Endpoints(c)
	if err != nil {
		return 0, nil, nil, err
	}
	n := c.G.N()
	flow = make([][]int8, n)
	for v := range flow {
		flow[v] = make([]int8, c.G.Degree(v))
	}
	// Residual capacity of arc (v, port) = 1 − flow; reverse arc gains.
	for {
		// BFS in the residual graph.
		prevNode := make([]int, n)
		prevPort := make([]int, n)
		for i := range prevNode {
			prevNode[i] = -1
		}
		prevNode[s] = s
		queue := []int{s}
		for len(queue) > 0 && prevNode[t] == -1 {
			v := queue[0]
			queue = queue[1:]
			for i, h := range c.G.AdjView(v) {
				if flow[v][i] < 1 && prevNode[h.To] == -1 {
					prevNode[h.To] = v
					prevPort[h.To] = i + 1
					queue = append(queue, h.To)
				}
			}
		}
		if prevNode[t] == -1 {
			break
		}
		// Augment one unit along the path.
		for v := t; v != s; v = prevNode[v] {
			u := prevNode[v]
			p := prevPort[v]
			flow[u][p-1]++
			rev := c.G.Neighbor(u, p).RevPort
			flow[v][rev-1]--
		}
		value++
	}
	// Min cut: the residual-reachable set from s.
	sourceSide = make([]bool, n)
	sourceSide[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i, h := range c.G.AdjView(v) {
			if flow[v][i] < 1 && !sourceSide[h.To] {
				sourceSide[h.To] = true
				queue = append(queue, h.To)
			}
		}
	}
	return value, flow, sourceSide, nil
}

// Predicate decides k-flow: the maximum s–t flow equals exactly K.
type Predicate struct {
	K int
}

var _ core.Predicate = Predicate{}

// Name implements core.Predicate.
func (p Predicate) Name() string { return fmt.Sprintf("%d-flow", p.K) }

// Eval implements core.Predicate.
func (p Predicate) Eval(c *graph.Config) bool {
	v, _, _, err := MaxFlowUnit(c)
	return err == nil && v == p.K
}

const (
	pathBits  = 16
	posBits   = 32
	portBitsW = 16
)

// entry is one trail's passage through a node.
type entry struct {
	path     uint64
	pos      uint64
	hasPrev  bool
	portPrev uint64 // 1-based port toward the previous trail node
	hasNext  bool
	portNext uint64 // 1-based port toward the next trail node
}

type label struct {
	sideS   bool // true: source side of the min cut
	entries []entry
}

func (l label) encode() core.Label {
	var w bitstring.Writer
	if l.sideS {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	w.WriteUint(uint64(len(l.entries)), 16)
	for _, e := range l.entries {
		w.WriteUint(e.path, pathBits)
		w.WriteUint(e.pos, posBits)
		writeFlagged(&w, e.hasPrev, e.portPrev)
		writeFlagged(&w, e.hasNext, e.portNext)
	}
	return w.String()
}

func writeFlagged(w *bitstring.Writer, has bool, v uint64) {
	if has {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	w.WriteUint(v, portBitsW)
}

func decode(s core.Label) (label, bool) {
	r := bitstring.NewReader(s)
	var l label
	b, err := r.ReadBit()
	if err != nil {
		return l, false
	}
	l.sideS = b == 1
	count, err := r.ReadUint(16)
	if err != nil || count > 1<<15 {
		return l, false
	}
	l.entries = make([]entry, count)
	for i := range l.entries {
		e := &l.entries[i]
		if e.path, err = r.ReadUint(pathBits); err != nil {
			return l, false
		}
		if e.pos, err = r.ReadUint(posBits); err != nil {
			return l, false
		}
		hb, err := r.ReadBit()
		if err != nil {
			return l, false
		}
		e.hasPrev = hb == 1
		if e.portPrev, err = r.ReadUint(portBitsW); err != nil {
			return l, false
		}
		hb, err = r.ReadBit()
		if err != nil {
			return l, false
		}
		e.hasNext = hb == 1
		if e.portNext, err = r.ReadUint(portBitsW); err != nil {
			return l, false
		}
	}
	return l, r.Remaining() == 0
}

// NewPLS returns the deterministic O(k log n) scheme for k-flow.
func NewPLS(k int) core.PLS { return pls{k: k} }

// NewRPLS returns the compiled scheme with O(log k + log log n) bits.
func NewRPLS(k int) core.RPLS { return core.Compile(NewPLS(k)) }

type pls struct {
	k int
}

var _ core.PLS = pls{}

func (s pls) Name() string { return fmt.Sprintf("%d-flow-det", s.k) }

func (s pls) Label(c *graph.Config) ([]core.Label, error) {
	value, flow, sourceSide, err := MaxFlowUnit(c)
	if err != nil {
		return nil, err
	}
	if value != s.k {
		return nil, core.ErrIllegalConfig
	}
	src, tgt, _ := Endpoints(c)
	labels := make([]label, c.G.N())
	for v := range labels {
		labels[v].sideS = sourceSide[v]
	}
	// Decompose the flow into k edge-disjoint trails via BFS on flow arcs.
	// flowPath returns [v0, p0, v1, p1, ..., v_m]: node v_j at index 2j,
	// the port leaving v_j at index 2j+1.
	for j := 0; j < s.k; j++ {
		path := flowPath(c, flow, src, tgt)
		if path == nil {
			return nil, fmt.Errorf("flow: decomposition found only %d trails", j)
		}
		m := len(path) / 2 // number of edges on the trail
		for step := 0; step <= m; step++ {
			v := path[2*step]
			e := entry{path: uint64(j), pos: uint64(step)}
			if step > 0 {
				prevNode := path[2*(step-1)]
				prevPort := path[2*(step-1)+1] // port at prevNode toward v
				e.hasPrev = true
				e.portPrev = uint64(c.G.Neighbor(prevNode, prevPort).RevPort)
			}
			if step < m {
				p := path[2*step+1]
				flow[v][p-1] = 0 // consume the unit
				e.hasNext = true
				e.portNext = uint64(p)
			}
			labels[v].entries = append(labels[v].entries, e)
		}
	}
	out := make([]core.Label, c.G.N())
	for v := range out {
		out[v] = labels[v].encode()
	}
	return out, nil
}

// flowPath finds an s→t node/port sequence along positive flow arcs:
// returns [v0, p0, v1, p1, ..., vk] alternating nodes and the port taken.
func flowPath(c *graph.Config, flow [][]int8, src, tgt int) []int {
	n := c.G.N()
	prevNode := make([]int, n)
	prevPort := make([]int, n)
	for i := range prevNode {
		prevNode[i] = -1
	}
	prevNode[src] = src
	queue := []int{src}
	for len(queue) > 0 && prevNode[tgt] == -1 {
		v := queue[0]
		queue = queue[1:]
		for i := range c.G.AdjView(v) {
			h := c.G.Neighbor(v, i+1)
			if flow[v][i] == 1 && prevNode[h.To] == -1 {
				prevNode[h.To] = v
				prevPort[h.To] = i + 1
				queue = append(queue, h.To)
			}
		}
	}
	if prevNode[tgt] == -1 {
		return nil
	}
	var rev []int
	for v := tgt; v != src; v = prevNode[v] {
		rev = append(rev, v, prevPort[v])
	}
	out := []int{src}
	for i := len(rev) - 1; i >= 0; i -= 2 {
		out = append(out, rev[i], rev[i-1])
	}
	return out
}

func (s pls) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, ok := decode(own)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	ns := make([]label, view.Deg)
	for i, nl := range nbrs {
		n, ok := decode(nl)
		if !ok {
			return false
		}
		ns[i] = n
	}
	isS := view.State.Flags&graph.FlagSource != 0
	isT := view.State.Flags&graph.FlagTarget != 0
	if isS && isT {
		return false
	}
	if isS && !me.sideS {
		return false
	}
	if isT && me.sideS {
		return false
	}

	// Port usage: every port carries at most one trail passage.
	used := make(map[uint64]bool)
	for _, e := range me.entries {
		if e.hasPrev {
			if e.portPrev < 1 || e.portPrev > uint64(view.Deg) || used[e.portPrev] {
				return false
			}
			used[e.portPrev] = true
		}
		if e.hasNext {
			if e.portNext < 1 || e.portNext > uint64(view.Deg) || used[e.portNext] {
				return false
			}
			used[e.portNext] = true
		}
	}

	// Source/target entry structure.
	if isS {
		if len(me.entries) != s.k {
			return false
		}
		seen := make(map[uint64]bool)
		for _, e := range me.entries {
			if e.hasPrev || e.pos != 0 || e.path >= uint64(s.k) || seen[e.path] || !e.hasNext {
				return false
			}
			seen[e.path] = true
		}
	} else {
		for _, e := range me.entries {
			if !e.hasPrev || e.pos == 0 {
				return false
			}
		}
	}

	// Trail continuity: the neighbor on the recorded port carries the
	// matching entry one step away; termination only at t.
	for _, e := range me.entries {
		if e.hasNext {
			nb := ns[e.portNext-1]
			if !hasEntryAt(nb, e.path, e.pos+1) {
				return false
			}
		} else if !isT {
			return false
		}
		if e.hasPrev {
			nb := ns[e.portPrev-1]
			if e.pos == 0 || !hasEntryWithNext(nb, e.path, e.pos-1) {
				return false
			}
		}
	}

	// Cut saturation: every edge from my S side to a T-side neighbor
	// carries exactly one outgoing trail and no incoming one.
	if me.sideS {
		for i, nb := range ns {
			if nb.sideS {
				continue
			}
			port := uint64(i + 1)
			outgoing, incoming := false, false
			for _, e := range me.entries {
				if e.hasNext && e.portNext == port {
					outgoing = true
				}
				if e.hasPrev && e.portPrev == port {
					incoming = true
				}
			}
			if !outgoing || incoming {
				return false
			}
		}
	}
	return true
}

func hasEntryAt(l label, path, pos uint64) bool {
	for _, e := range l.entries {
		if e.path == path && e.pos == pos {
			return true
		}
	}
	return false
}

func hasEntryWithNext(l label, path, pos uint64) bool {
	for _, e := range l.entries {
		if e.path == path && e.pos == pos && e.hasNext {
			return true
		}
	}
	return false
}
