package flow

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
)

// White-box attacks on the k-flow certificate: forge path entries and cut
// sides in decoded honest labels and confirm the verifier's checks bind.

func whiteboxSetup(t *testing.T) (*graph.Config, []label, int) {
	t.Helper()
	g := graph.Complete(5)
	c := graph.NewConfig(g)
	c.States[0].Flags |= graph.FlagSource
	c.States[4].Flags |= graph.FlagTarget
	k, _, _, err := MaxFlowUnit(c)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := NewPLS(k).Label(c)
	if err != nil {
		t.Fatal(err)
	}
	decoded := make([]label, len(raw))
	for v, l := range raw {
		d, ok := decode(l)
		if !ok {
			t.Fatal("honest label failed to decode")
		}
		decoded[v] = d
	}
	return c, decoded, k
}

func verifyAll(c *graph.Config, decoded []label, k int) bool {
	labels := make([]core.Label, len(decoded))
	for v, d := range decoded {
		labels[v] = d.encode()
	}
	return engine.Verify(engine.FromPLS(NewPLS(k)), c, labels).Accepted
}

func TestWhiteboxHonestRoundTrip(t *testing.T) {
	c, decoded, k := whiteboxSetup(t)
	if !verifyAll(c, decoded, k) {
		t.Fatal("re-encoded honest labels rejected")
	}
}

func TestWhiteboxDroppedPathAtSource(t *testing.T) {
	c, decoded, k := whiteboxSetup(t)
	decoded[0].entries = decoded[0].entries[:k-1] // s must carry exactly k
	if verifyAll(c, decoded, k) {
		t.Error("source with k−1 paths accepted")
	}
}

func TestWhiteboxBrokenChain(t *testing.T) {
	c, decoded, k := whiteboxSetup(t)
	// Remove an intermediate entry: the predecessor's continuity check
	// (neighbor at portNext must hold (path, pos+1)) fires.
	victim := -1
	for v := 1; v < len(decoded)-1; v++ {
		if len(decoded[v].entries) > 0 {
			victim = v
			break
		}
	}
	if victim == -1 {
		t.Skip("no intermediate entries")
	}
	decoded[victim].entries = decoded[victim].entries[1:]
	if verifyAll(c, decoded, k) {
		t.Error("broken chain accepted")
	}
}

func TestWhiteboxSideFlip(t *testing.T) {
	c, decoded, k := whiteboxSetup(t)
	// Flip an intermediate node's cut side; either an S–T edge appears or
	// cut saturation fails somewhere.
	decoded[2].sideS = !decoded[2].sideS
	if verifyAll(c, decoded, k) {
		t.Error("flipped cut side accepted")
	}
}

func TestWhiteboxDuplicatedPortUse(t *testing.T) {
	c, decoded, k := whiteboxSetup(t)
	// Duplicate an entry at the source reusing the same port: the per-port
	// uniqueness check (edge-disjointness) fires.
	e := decoded[0].entries[0]
	e.path = uint64(k) // a fresh path id to dodge the distinctness check
	decoded[0].entries = append(decoded[0].entries, e)
	if verifyAll(c, decoded, k) {
		t.Error("port reuse accepted")
	}
}

func TestWhiteboxTerminatedEarly(t *testing.T) {
	c, decoded, k := whiteboxSetup(t)
	// Mark a source entry as having no continuation: only t may terminate.
	decoded[0].entries[0].hasNext = false
	if verifyAll(c, decoded, k) {
		t.Error("path terminating at the source accepted")
	}
}
