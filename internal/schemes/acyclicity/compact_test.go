package acyclicity_test

import (
	"testing"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/acyclicity"
	"rpls/internal/schemes/schemetest"
)

// The compact variant must behave identically to the fixed-width scheme.

func TestCompactCompleteness(t *testing.T) {
	rng := prng.New(1)
	det := acyclicity.NewCompactPLS()
	rand := acyclicity.NewCompactRPLS()
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(40)
		c := graph.NewConfig(graph.RandomTree(n, rng))
		res, err := engine.Run(engine.FromPLS(det), c)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("trial %d: legal tree rejected", trial)
		}
		labels, err := rand.Label(c)
		if err != nil {
			t.Fatal(err)
		}
		if rate := engine.Acceptance(engine.FromRPLS(rand), c, labels, 20, uint64(trial)); rate != 1.0 {
			t.Fatalf("trial %d: randomized acceptance %v", trial, rate)
		}
	}
}

func TestCompactSoundnessOnCycles(t *testing.T) {
	rng := prng.New(2)
	det := acyclicity.NewCompactPLS()
	for _, n := range []int{3, 5, 8} {
		g, err := graph.Cycle(n)
		if err != nil {
			t.Fatal(err)
		}
		illegal := graph.NewConfig(g)
		for trial := 0; trial < 100; trial++ {
			labels := schemetest.RandomLabels(rng, n, 80)
			if engine.Verify(engine.FromPLS(det), illegal, labels).Accepted {
				t.Fatalf("n=%d: random labels accepted a cycle", n)
			}
		}
	}
}

func TestCompactLabelsScaleWithLogN(t *testing.T) {
	det := acyclicity.NewCompactPLS()
	prev := 0
	for _, n := range []int{16, 256, 4096} {
		c := graph.NewConfig(graph.RandomTree(n, prng.New(uint64(n))))
		labels, err := det.Label(c)
		if err != nil {
			t.Fatal(err)
		}
		bits := core.MaxBits(labels)
		if bits > 4*log2ceil(n)+8 {
			t.Errorf("n=%d: compact labels %d bits exceed ~4log n", n, bits)
		}
		if prev > 0 && bits <= prev {
			t.Errorf("n=%d: labels did not grow (%d -> %d)", n, prev, bits)
		}
		prev = bits
	}
}

func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
