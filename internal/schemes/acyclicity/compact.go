package acyclicity

import (
	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// NewCompactPLS returns the same scheme with self-delimiting Elias-gamma
// fields instead of fixed 64/32-bit ones, so the measured label size
// actually scales as Θ(log n) when identities are poly(n) — the form in
// which the paper states verification complexities. (The fixed-width
// variant is the faster decoder; this one exists so experiment E18 can
// exhibit the Θ(log n) vs Θ(log log n) growth curves of Theorem 5.1's
// machinery.)
func NewCompactPLS() core.PLS { return compactPLS{} }

// NewCompactRPLS returns the compiled compact scheme.
func NewCompactRPLS() core.RPLS { return core.Compile(NewCompactPLS()) }

type compactPLS struct{}

var _ core.PLS = compactPLS{}

func (compactPLS) Name() string { return "acyclicity-compact" }

func (compactPLS) Label(c *graph.Config) ([]core.Label, error) {
	if !(Predicate{}).Eval(c) {
		return nil, core.ErrIllegalConfig
	}
	labels := make([]core.Label, c.G.N())
	for _, comp := range c.G.Components() {
		root := comp[0]
		dist := c.G.BFSDist(root)
		for _, v := range comp {
			var w bitstring.Writer
			w.WriteGamma(c.States[root].ID)
			w.WriteGamma(uint64(dist[v]))
			labels[v] = w.String()
		}
	}
	return labels, nil
}

func decodeCompact(l core.Label) (decoded, bool) {
	r := bitstring.NewReader(l)
	rootID, err := r.ReadGamma()
	if err != nil {
		return decoded{}, false
	}
	dist, err := r.ReadGamma()
	if err != nil || r.Remaining() != 0 {
		return decoded{}, false
	}
	return decoded{rootID: rootID, dist: dist}, true
}

func (compactPLS) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, ok := decodeCompact(own)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	parents := 0
	for _, nl := range nbrs {
		n, ok := decodeCompact(nl)
		if !ok {
			return false
		}
		if n.rootID != me.rootID {
			return false
		}
		switch {
		case n.dist+1 == me.dist:
			parents++
		case n.dist == me.dist+1:
			// a child; fine
		default:
			return false
		}
	}
	if me.dist == 0 {
		return me.rootID == view.State.ID && parents == 0
	}
	return parents == 1
}
