package acyclicity_test

import (
	"testing"

	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/acyclicity"
	"rpls/internal/schemes/schemetest"
)

func TestPredicate(t *testing.T) {
	rng := prng.New(1)
	if !(acyclicity.Predicate{}).Eval(graph.NewConfig(graph.RandomTree(20, rng))) {
		t.Error("tree rejected")
	}
	cyc, err := graph.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if (acyclicity.Predicate{}).Eval(graph.NewConfig(cyc)) {
		t.Error("cycle accepted")
	}
	// Forest with several components.
	forest := graph.New(6)
	forest.MustAddEdge(0, 1)
	forest.MustAddEdge(2, 3)
	if !(acyclicity.Predicate{}).Eval(graph.NewConfig(forest)) {
		t.Error("forest rejected")
	}
	// Disconnected graph with a cycle in one component.
	mixed := graph.New(7)
	mixed.MustAddEdge(0, 1)
	mixed.MustAddEdge(2, 3)
	mixed.MustAddEdge(3, 4)
	mixed.MustAddEdge(4, 2)
	if (acyclicity.Predicate{}).Eval(graph.NewConfig(mixed)) {
		t.Error("graph with a cyclic component accepted")
	}
}

func TestCompleteness(t *testing.T) {
	rng := prng.New(2)
	det := acyclicity.NewPLS()
	rand := acyclicity.NewRPLS()
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(40)
		c := graph.NewConfig(graph.RandomTree(n, rng))
		c.AssignRandomIDs(rng)
		h := schemetest.New(uint64(trial))
		h.LegalAccepted(t, det, c)
		h.LegalAcceptedRPLS(t, rand, c, 30)
	}
	// Paths: the Theorem 5.1 family.
	c := graph.NewConfig(graph.Path(33))
	h := schemetest.New(33)
	h.LegalAccepted(t, det, c)
	h.LegalAcceptedRPLS(t, rand, c, 50)
}

func TestProverRefusesCycle(t *testing.T) {
	g, err := graph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	schemetest.New(1).ProverRefuses(t, acyclicity.NewPLS(), graph.NewConfig(g))
}

func TestSoundnessOnCyclesAllRandomLabels(t *testing.T) {
	// No labeling of an odd or even cycle may be accepted.
	for _, n := range []int{3, 4, 5, 6, 9} {
		g, err := graph.Cycle(n)
		if err != nil {
			t.Fatal(err)
		}
		illegal := graph.NewConfig(g)
		schemetest.New(uint64(n)).RandomLabelsRejected(t, acyclicity.NewPLS(), illegal, 200, 100)
	}
}

func TestSoundnessStructuredDistanceAttack(t *testing.T) {
	// Adversary labels an even cycle with "valley" distances 0,1,2,...,k,...,2,1
	// sharing one rootID: the node at the top of the valley has two parents
	// and must reject; the would-be second root is adjacent to distance 1.
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	illegal := graph.NewConfig(g)
	det := acyclicity.NewPLS()

	legal := graph.NewConfig(graph.Path(8))
	labels, err := det.Label(legal)
	if err != nil {
		t.Fatal(err)
	}
	// Path labels on the cycle: distances 0..7 around the ring; the edge
	// {7, 0} connects distances 7 and 0, which differ by more than one.
	if engine.Verify(engine.FromPLS(det), illegal, labels).Accepted {
		t.Error("path-distance labels fooled the cycle verifier")
	}
}

func TestSoundnessCrossedPathBecomesCycle(t *testing.T) {
	// The exact Theorem 5.1 scenario: cross two path edges so a cycle
	// detaches, keep the legal path labels, and check rejection. (The paper
	// shows a small enough scheme WOULD be fooled; the honest Θ(log n)
	// scheme must not be.)
	pathCfg := graph.NewConfig(graph.Path(12))
	det := acyclicity.NewPLS()
	labels, err := det.Label(pathCfg)
	if err != nil {
		t.Fatal(err)
	}
	crossed, err := pathCfg.CrossConfig(graph.EdgePair{U1: 3, V1: 4, U2: 9, V2: 10})
	if err != nil {
		t.Fatal(err)
	}
	if (acyclicity.Predicate{}).Eval(crossed) {
		t.Fatal("crossing should have created a cycle")
	}
	if engine.Verify(engine.FromPLS(det), crossed, labels).Accepted {
		t.Error("crossed configuration accepted with original labels")
	}
	rand := acyclicity.NewRPLS()
	randLabels, err := rand.Label(pathCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rate := engine.Acceptance(engine.FromRPLS(rand), crossed, randLabels, 300, 9); rate > 1.0/3 {
		t.Errorf("randomized scheme accepted crossed configuration at %v", rate)
	}
}

func TestLabelAndCertSizes(t *testing.T) {
	rng := prng.New(3)
	for _, n := range []int{16, 128, 1024} {
		c := graph.NewConfig(graph.RandomTree(n, rng))
		h := schemetest.New(uint64(n))
		h.LabelBitsAtMost(t, acyclicity.NewPLS(), c, 96)
		h.CertBitsAtMost(t, acyclicity.NewRPLS(), c, 40)
	}
}
