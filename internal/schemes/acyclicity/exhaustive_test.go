package acyclicity_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/schemes/acyclicity"
)

// acceptedSequential runs the deterministic verifier without goroutines;
// the exhaustive sweeps call it hundreds of thousands of times.
func acceptedSequential(det core.PLS, cfg *graph.Config, labels []core.Label) bool {
	for v := 0; v < cfg.G.N(); v++ {
		deg := cfg.G.Degree(v)
		nbrs := make([]core.Label, deg)
		for i := 0; i < deg; i++ {
			nbrs[i] = labels[cfg.G.Neighbor(v, i+1).To]
		}
		if !det.Verify(core.ViewOf(cfg, v), labels[v], nbrs) {
			return false
		}
	}
	return true
}

// TestExhaustiveAdversaryOnSmallCycles verifies the ∀-labels soundness
// clause directly on tiny instances: over a bounded but semantically
// complete adversary space, NO label assignment makes the verifier accept a
// cycle.
//
// The space is complete in the following sense: the verifier compares
// root identities only for equality against the four real identities (a
// fifth value behaves like any other mismatched value, and an accepting
// assignment must have ALL rootIDs equal anyway, so one shared symbolic
// value suffices — we still sweep all four), and distances only via the
// relations d(u) == d(v)±1; on an n-node instance an accepting assignment
// exists iff one exists with all distances in [0, n+1] (subtract the
// minimum; relations are translation invariant, and the root rule d=0 only
// helps the adversary when some d IS 0, which shifting preserves when the
// minimum was 0).
func TestExhaustiveAdversaryOnSmallCycles(t *testing.T) {
	for _, n := range []int{3, 4} {
		g, err := graph.Cycle(n)
		if err != nil {
			t.Fatal(err)
		}
		cfg := graph.NewConfig(g)
		det := acyclicity.NewPLS()

		maxDist := n + 1
		ids := make([]uint64, n)
		for v := 0; v < n; v++ {
			ids[v] = cfg.States[v].ID
		}
		// Each node's label = (rootID choice, dist choice).
		choices := n * (maxDist + 1)
		total := 1
		for i := 0; i < n; i++ {
			total *= choices
		}
		accepted := 0
		labels := make([]core.Label, n)
		for code := 0; code < total; code++ {
			c := code
			for v := 0; v < n; v++ {
				pick := c % choices
				c /= choices
				rootID := ids[pick/(maxDist+1)]
				dist := uint64(pick % (maxDist + 1))
				var w bitstring.Writer
				w.WriteUint(rootID, 64)
				w.WriteUint(dist, 32)
				labels[v] = w.String()
			}
			if acceptedSequential(det, cfg, labels) {
				accepted++
				t.Fatalf("n=%d: adversarial labeling %d accepted a cycle", n, code)
			}
		}
		t.Logf("n=%d: all %d labelings rejected", n, total)
	}
}

// TestExhaustiveCompletenessWitnessExists double-checks the adversary space
// is not vacuous: on a PATH (a YES instance) the same space does contain
// accepting assignments.
func TestExhaustiveCompletenessWitnessExists(t *testing.T) {
	const n = 3
	cfg := graph.NewConfig(graph.Path(n))
	det := acyclicity.NewPLS()
	maxDist := n + 1
	ids := []uint64{cfg.States[0].ID, cfg.States[1].ID, cfg.States[2].ID}
	choices := n * (maxDist + 1)
	found := false
	labels := make([]core.Label, n)
	for code := 0; code < choices*choices*choices && !found; code++ {
		c := code
		for v := 0; v < n; v++ {
			pick := c % choices
			c /= choices
			var w bitstring.Writer
			w.WriteUint(ids[pick/(maxDist+1)], 64)
			w.WriteUint(uint64(pick%(maxDist+1)), 32)
			labels[v] = w.String()
		}
		found = acceptedSequential(det, cfg, labels)
	}
	if !found {
		t.Fatal("no accepting assignment found for a legal path: adversary space is broken")
	}
}
