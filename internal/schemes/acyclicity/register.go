package acyclicity

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:        "acyclicity",
		Description: "the network is a forest (Theorem 5.1 machinery)",
		Det:         func(engine.Params) engine.Scheme { return engine.FromPLS(NewPLS()) },
		Rand:        func(engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS()) },
	})
	engine.Register(engine.Entry{
		Name:        "acyclicity-compact",
		Description: "forest certification with gamma-coded distance labels",
		Det:         func(engine.Params) engine.Scheme { return engine.FromPLS(NewCompactPLS()) },
		Rand:        func(engine.Params) engine.Scheme { return engine.FromRPLS(NewCompactRPLS()) },
	})
}
