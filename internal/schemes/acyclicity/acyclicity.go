// Package acyclicity certifies that the network itself is a forest. The
// predicate is the lower-bound workhorse of Theorem 5.1: the paper proves
// that even on the family of lines-and-cycles, any RPLS needs Ω(log log n)
// bits, which also bounds MST from below.
//
// The deterministic scheme ([31], Θ(log n) bits) roots every component and
// labels each node with the root identity and its tree distance. Locally:
//
//   - adjacent distances differ by exactly one (so d mod 2 2-colors every
//     edge — odd cycles die immediately);
//   - a node with d > 0 has exactly one neighbor at d−1 (its parent);
//   - a node with d = 0 is its component's root and names itself.
//
// On a graph with a cycle, the maximum-d node of the cycle would need two
// neighbors at d−1 (ties being forbidden), so some node always rejects.
package acyclicity

import (
	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// Predicate decides whether the graph is a forest (no cycles). Unlike most
// predicates in the paper this one is about the topology itself, so it is
// meaningful on disconnected graphs too (crossing experiments produce them).
type Predicate struct{}

var _ core.Predicate = Predicate{}

// Name implements core.Predicate.
func (Predicate) Name() string { return "acyclicity" }

// Eval implements core.Predicate.
func (Predicate) Eval(c *graph.Config) bool {
	// A graph is a forest iff m = n − (#components).
	return c.G.M() == c.G.N()-len(c.G.Components())
}

const distBits = 32

// NewPLS returns the deterministic Θ(log n) scheme.
func NewPLS() core.PLS { return pls{} }

type pls struct{}

var _ core.PLS = pls{}

func (pls) Name() string { return "acyclicity-det" }

func (pls) Label(c *graph.Config) ([]core.Label, error) {
	if !(Predicate{}).Eval(c) {
		return nil, core.ErrIllegalConfig
	}
	labels := make([]core.Label, c.G.N())
	for _, comp := range c.G.Components() {
		root := comp[0]
		dist := c.G.BFSDist(root)
		for _, v := range comp {
			var w bitstring.Writer
			w.WriteUint(c.States[root].ID, 64)
			w.WriteUint(uint64(dist[v]), distBits)
			labels[v] = w.String()
		}
	}
	return labels, nil
}

type decoded struct {
	rootID uint64
	dist   uint64
}

func decode(l core.Label) (decoded, bool) {
	r := bitstring.NewReader(l)
	rootID, err := r.ReadUint(64)
	if err != nil {
		return decoded{}, false
	}
	dist, err := r.ReadUint(distBits)
	if err != nil || r.Remaining() != 0 {
		return decoded{}, false
	}
	return decoded{rootID: rootID, dist: dist}, true
}

func (pls) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, ok := decode(own)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	parents := 0
	for _, nl := range nbrs {
		n, ok := decode(nl)
		if !ok {
			return false
		}
		if n.rootID != me.rootID {
			return false
		}
		switch {
		case n.dist+1 == me.dist:
			parents++
		case n.dist == me.dist+1:
			// a child; fine
		default:
			return false // equal or differing by more than one
		}
	}
	if me.dist == 0 {
		return me.rootID == view.State.ID && parents == 0
	}
	return parents == 1
}

// NewRPLS returns the compiled randomized scheme with O(log log n)-bit
// certificates (the upper bound side of Theorem 5.1's machinery).
func NewRPLS() core.RPLS { return core.Compile(NewPLS()) }
