// Package stconn implements s-t k-vertex-connectivity, the problem §5.2 of
// the paper derives from [31]: decide whether the vertex connectivity
// between two designated nodes s and t — the maximum number of internally
// vertex-disjoint s-t paths — is exactly k. The deterministic scheme uses
// Θ(log n)-bit labels away from the terminals (O(k log n) at s and t);
// compilation gives the usual exponential certificate compression.
//
// Certificate structure (Menger's theorem made local):
//
//   - k internally vertex-disjoint paths, recorded as (path id, position,
//     in-port, out-port) entries; a non-terminal node may carry at most ONE
//     entry, which is vertex disjointness verified locally;
//   - a vertex cut: every node is labeled S, CUT, or T, with s in S, t in
//     T, no S-T edge, each CUT node on exactly one path, and paths
//     monotone (S… CUT T…), so each path crosses the cut exactly once and
//     the cut has exactly k vertices — pinning the connectivity from above.
//
// Ground truth is a unit-node-capacity max flow on the standard node-split
// digraph.
package stconn

import (
	"fmt"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
)

// Endpoints locates the unique flagged source and target.
func Endpoints(c *graph.Config) (s, t int, err error) {
	s, t = -1, -1
	for v, st := range c.States {
		if st.Flags&graph.FlagSource != 0 {
			if s != -1 {
				return 0, 0, fmt.Errorf("stconn: multiple sources")
			}
			s = v
		}
		if st.Flags&graph.FlagTarget != 0 {
			if t != -1 {
				return 0, 0, fmt.Errorf("stconn: multiple targets")
			}
			t = v
		}
	}
	if s == -1 || t == -1 || s == t {
		return 0, 0, fmt.Errorf("stconn: need distinct source and target")
	}
	return s, t, nil
}

// Connectivity computes the maximum number of internally vertex-disjoint
// s-t paths, the node paths of one optimal family, and the side assignment
// of a minimum vertex cut (0 = S side, 1 = cut member, 2 = T side).
func Connectivity(c *graph.Config) (k int, paths [][]int, sides []int8, err error) {
	s, t, err := Endpoints(c)
	if err != nil {
		return 0, nil, nil, err
	}
	if c.G.HasEdge(s, t) {
		// Menger's vertex form needs non-adjacent terminals: no vertex cut
		// separates adjacent nodes. The family F for this predicate is
		// configurations with non-adjacent s and t.
		return 0, nil, nil, fmt.Errorf("stconn: s and t must be non-adjacent")
	}
	n := c.G.N()
	d := newDigraph(2 * n)
	inOf := func(v int) int { return 2 * v }
	outOf := func(v int) int { return 2*v + 1 }
	big := n + 1
	for v := 0; v < n; v++ {
		cap := 1
		if v == s || v == t {
			cap = big
		}
		d.addArc(inOf(v), outOf(v), cap)
	}
	// Edge arcs carry effectively infinite capacity so the minimum cut
	// consists of node arcs only (every s-t path passes an internal node
	// since the terminals are non-adjacent); paths still cannot share an
	// edge because one of its endpoints is always a capacity-1 internal
	// node.
	for _, e := range c.G.Edges() {
		d.addArc(outOf(e.U), inOf(e.V), big)
		d.addArc(outOf(e.V), inOf(e.U), big)
	}
	k = d.maxflow(outOf(s), inOf(t))

	// Decompose into k node paths along positive-flow arcs.
	for i := 0; i < k; i++ {
		nodePath := d.extractPath(outOf(s), inOf(t))
		if nodePath == nil {
			return 0, nil, nil, fmt.Errorf("stconn: decomposition found only %d paths", i)
		}
		// nodePath alternates out(v)/in(w) vertices; map back to nodes,
		// deduplicating the in/out pairs.
		var p []int
		for _, x := range nodePath {
			v := x / 2
			if len(p) == 0 || p[len(p)-1] != v {
				p = append(p, v)
			}
		}
		paths = append(paths, p)
	}

	// Min vertex cut from residual reachability (computed before the
	// decomposition zeroed flows — reachability was recorded by maxflow).
	sides = make([]int8, n)
	for v := 0; v < n; v++ {
		switch {
		case d.reach[inOf(v)] && d.reach[outOf(v)]:
			sides[v] = 0 // S
		case d.reach[inOf(v)] && !d.reach[outOf(v)]:
			sides[v] = 1 // cut member
		default:
			sides[v] = 2 // T
		}
	}
	// The residual search starts at out(s), so in(s) is unreached and the
	// classification above would mislabel the terminals; pin them.
	sides[s] = 0
	sides[t] = 2
	return k, paths, sides, nil
}

// digraph is a tiny arc-list max-flow structure (Edmonds–Karp).
type digraph struct {
	head  [][]int // head[v] = arc indices out of v
	to    []int
	cap   []int
	reach []bool // residual reachability snapshot from the last maxflow
}

func newDigraph(n int) *digraph {
	return &digraph{head: make([][]int, n)}
}

func (d *digraph) addArc(u, v, c int) {
	d.head[u] = append(d.head[u], len(d.to))
	d.to = append(d.to, v)
	d.cap = append(d.cap, c)
	d.head[v] = append(d.head[v], len(d.to))
	d.to = append(d.to, u)
	d.cap = append(d.cap, 0)
}

func (d *digraph) maxflow(s, t int) int {
	total := 0
	for {
		prevArc := d.bfs(s, t)
		if prevArc[t] == -1 {
			// Record the final residual reachability for the min cut.
			d.reach = make([]bool, len(d.head))
			for v, a := range prevArc {
				d.reach[v] = a != -1 || v == s
			}
			return total
		}
		// Bottleneck.
		bottleneck := 1 << 30
		for v := t; v != s; {
			a := prevArc[v]
			if d.cap[a] < bottleneck {
				bottleneck = d.cap[a]
			}
			v = d.to[a^1]
		}
		for v := t; v != s; {
			a := prevArc[v]
			d.cap[a] -= bottleneck
			d.cap[a^1] += bottleneck
			v = d.to[a^1]
		}
		total += bottleneck
	}
}

// bfs returns, per vertex, the arc used to reach it (-1 if unreached).
func (d *digraph) bfs(s, t int) []int {
	prevArc := make([]int, len(d.head))
	for i := range prevArc {
		prevArc[i] = -1
	}
	queue := []int{s}
	seen := make([]bool, len(d.head))
	seen[s] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range d.head[v] {
			if d.cap[a] > 0 && !seen[d.to[a]] {
				seen[d.to[a]] = true
				prevArc[d.to[a]] = a
				queue = append(queue, d.to[a])
			}
		}
	}
	return prevArc
}

// extractPath walks one unit of flow from s to t (on arcs whose reverse
// capacity is positive, i.e. arcs carrying flow), zeroing it.
func (d *digraph) extractPath(s, t int) []int {
	prevArc := make([]int, len(d.head))
	for i := range prevArc {
		prevArc[i] = -1
	}
	queue := []int{s}
	seen := make([]bool, len(d.head))
	seen[s] = true
	for len(queue) > 0 && !seen[t] {
		v := queue[0]
		queue = queue[1:]
		for _, a := range d.head[v] {
			// a carries flow iff its reverse arc gained capacity.
			if a&1 == 0 && d.cap[a^1] > 0 && !seen[d.to[a]] {
				seen[d.to[a]] = true
				prevArc[d.to[a]] = a
				queue = append(queue, d.to[a])
			}
		}
	}
	if !seen[t] {
		return nil
	}
	var rev []int
	for v := t; v != s; {
		a := prevArc[v]
		d.cap[a^1]-- // consume one unit
		d.cap[a]++
		rev = append(rev, v)
		v = d.to[a^1]
	}
	out := []int{s}
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// Predicate decides whether the s-t vertex connectivity is exactly K.
type Predicate struct {
	K int
}

var _ core.Predicate = Predicate{}

// Name implements core.Predicate.
func (p Predicate) Name() string { return fmt.Sprintf("st-%d-vertex-connectivity", p.K) }

// Eval implements core.Predicate.
func (p Predicate) Eval(c *graph.Config) bool {
	k, _, _, err := Connectivity(c)
	return err == nil && k == p.K
}

const (
	sideS   = 0
	sideCut = 1
	sideT   = 2
)

type entry struct {
	path     uint64
	pos      uint64
	hasPrev  bool
	portPrev uint64
	hasNext  bool
	portNext uint64
}

type label struct {
	side    uint64
	entries []entry
}

func (l label) encode() core.Label {
	var w bitstring.Writer
	w.WriteUint(l.side, 2)
	w.WriteUint(uint64(len(l.entries)), 16)
	for _, e := range l.entries {
		w.WriteUint(e.path, 16)
		w.WriteUint(e.pos, 32)
		writeFlagged(&w, e.hasPrev, e.portPrev)
		writeFlagged(&w, e.hasNext, e.portNext)
	}
	return w.String()
}

func writeFlagged(w *bitstring.Writer, has bool, v uint64) {
	if has {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	w.WriteUint(v, 16)
}

func decode(s core.Label) (label, bool) {
	r := bitstring.NewReader(s)
	var l label
	var err error
	if l.side, err = r.ReadUint(2); err != nil || l.side > sideT {
		return l, false
	}
	count, err := r.ReadUint(16)
	if err != nil || count > 1<<15 {
		return l, false
	}
	l.entries = make([]entry, count)
	for i := range l.entries {
		e := &l.entries[i]
		if e.path, err = r.ReadUint(16); err != nil {
			return l, false
		}
		if e.pos, err = r.ReadUint(32); err != nil {
			return l, false
		}
		b, err := r.ReadBit()
		if err != nil {
			return l, false
		}
		e.hasPrev = b == 1
		if e.portPrev, err = r.ReadUint(16); err != nil {
			return l, false
		}
		if b, err = r.ReadBit(); err != nil {
			return l, false
		}
		e.hasNext = b == 1
		if e.portNext, err = r.ReadUint(16); err != nil {
			return l, false
		}
	}
	return l, r.Remaining() == 0
}

// NewPLS returns the deterministic scheme for s-t k-vertex-connectivity.
func NewPLS(k int) core.PLS { return pls{k: k} }

// NewRPLS returns the compiled randomized scheme.
func NewRPLS(k int) core.RPLS { return core.Compile(NewPLS(k)) }

type pls struct {
	k int
}

var _ core.PLS = pls{}

func (s pls) Name() string { return fmt.Sprintf("st-%d-connectivity-det", s.k) }

func (s pls) Label(c *graph.Config) ([]core.Label, error) {
	k, paths, sides, err := Connectivity(c)
	if err != nil {
		return nil, err
	}
	if k != s.k {
		return nil, core.ErrIllegalConfig
	}
	labels := make([]label, c.G.N())
	for v := range labels {
		labels[v].side = uint64(sides[v])
	}
	for j, p := range paths {
		for i, v := range p {
			e := entry{path: uint64(j), pos: uint64(i)}
			if i > 0 {
				port, ok := c.G.PortTo(v, p[i-1])
				if !ok {
					return nil, fmt.Errorf("stconn: path edge {%d,%d} missing", v, p[i-1])
				}
				e.hasPrev = true
				e.portPrev = uint64(port)
			}
			if i+1 < len(p) {
				port, ok := c.G.PortTo(v, p[i+1])
				if !ok {
					return nil, fmt.Errorf("stconn: path edge {%d,%d} missing", v, p[i+1])
				}
				e.hasNext = true
				e.portNext = uint64(port)
			}
			labels[v].entries = append(labels[v].entries, e)
		}
	}
	out := make([]core.Label, c.G.N())
	for v := range out {
		out[v] = labels[v].encode()
	}
	return out, nil
}

func (s pls) Verify(view core.View, own core.Label, nbrs []core.Label) bool {
	me, ok := decode(own)
	if !ok || len(nbrs) != view.Deg {
		return false
	}
	ns := make([]label, view.Deg)
	for i, nl := range nbrs {
		n, ok := decode(nl)
		if !ok {
			return false
		}
		ns[i] = n
	}
	isS := view.State.Flags&graph.FlagSource != 0
	isT := view.State.Flags&graph.FlagTarget != 0
	if isS && isT {
		return false
	}

	// Side structure.
	if isS && me.side != sideS {
		return false
	}
	if isT && me.side != sideT {
		return false
	}
	// The cut separates: no S-T edge in either direction.
	for _, n := range ns {
		if me.side == sideS && n.side == sideT {
			return false
		}
		if me.side == sideT && n.side == sideS {
			return false
		}
	}

	// Entry structure.
	switch {
	case isS:
		if len(me.entries) != s.k {
			return false
		}
		seenPath := make(map[uint64]bool, s.k)
		seenPort := make(map[uint64]bool, s.k)
		for _, e := range me.entries {
			if e.hasPrev || e.pos != 0 || !e.hasNext || e.path >= uint64(s.k) {
				return false
			}
			if seenPath[e.path] || seenPort[e.portNext] {
				return false
			}
			if e.portNext < 1 || e.portNext > uint64(view.Deg) {
				return false
			}
			seenPath[e.path] = true
			seenPort[e.portNext] = true
		}
	case isT:
		seenPort := make(map[uint64]bool)
		for _, e := range me.entries {
			if !e.hasPrev || e.hasNext || e.pos == 0 {
				return false
			}
			if e.portPrev < 1 || e.portPrev > uint64(view.Deg) || seenPort[e.portPrev] {
				return false
			}
			seenPort[e.portPrev] = true
		}
	default:
		// Vertex disjointness: at most one path through a non-terminal.
		if len(me.entries) > 1 {
			return false
		}
		for _, e := range me.entries {
			if !e.hasPrev || !e.hasNext || e.pos == 0 {
				return false
			}
			if e.portPrev < 1 || e.portPrev > uint64(view.Deg) ||
				e.portNext < 1 || e.portNext > uint64(view.Deg) ||
				e.portPrev == e.portNext {
				return false
			}
		}
	}
	// A cut member must carry exactly one path.
	if me.side == sideCut && len(me.entries) != 1 {
		return false
	}

	// Chain continuity and side monotonicity (S… CUT T…).
	for _, e := range me.entries {
		if e.hasNext {
			nb := ns[e.portNext-1]
			if !hasEntryAt(nb, e.path, e.pos+1) {
				return false
			}
			switch me.side {
			case sideS:
				if nb.side == sideT {
					return false
				}
			case sideCut:
				if nb.side != sideT {
					return false
				}
			case sideT:
				if nb.side != sideT {
					return false
				}
			}
		}
		if e.hasPrev {
			nb := ns[e.portPrev-1]
			if !hasEntryWithNext(nb, e.path, e.pos-1) {
				return false
			}
			switch me.side {
			case sideS:
				if nb.side != sideS {
					return false
				}
			case sideCut:
				if nb.side != sideS {
					return false
				}
			case sideT:
				if nb.side == sideS {
					return false
				}
			}
		}
	}
	return true
}

func hasEntryAt(l label, path, pos uint64) bool {
	for _, e := range l.entries {
		if e.path == path && e.pos == pos {
			return true
		}
	}
	return false
}

func hasEntryWithNext(l label, path, pos uint64) bool {
	for _, e := range l.entries {
		if e.path == path && e.pos == pos && e.hasNext {
			return true
		}
	}
	return false
}
