package stconn_test

import (
	"testing"

	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/schemetest"
	"rpls/internal/schemes/stconn"
)

func stConfig(g *graph.Graph, s, t int) *graph.Config {
	c := graph.NewConfig(g)
	c.States[s].Flags |= graph.FlagSource
	c.States[t].Flags |= graph.FlagTarget
	return c
}

// bruteConnectivity computes the s-t vertex connectivity by trying all
// vertex subsets as separators (exponential; test sizes only).
func bruteConnectivity(g *graph.Graph, s, t int) int {
	n := g.N()
	var internals []int
	for v := 0; v < n; v++ {
		if v != s && v != t {
			internals = append(internals, v)
		}
	}
	best := len(internals) + 1
	for mask := 0; mask < 1<<uint(len(internals)); mask++ {
		size := 0
		removed := make(map[int]bool)
		for i, v := range internals {
			if mask&(1<<uint(i)) != 0 {
				removed[v] = true
				size++
			}
		}
		if size >= best {
			continue
		}
		var keep []int
		for v := 0; v < n; v++ {
			if !removed[v] {
				keep = append(keep, v)
			}
		}
		sub, orig := g.InducedSubgraph(keep)
		var si, ti int
		for i, v := range orig {
			if v == s {
				si = i
			}
			if v == t {
				ti = i
			}
		}
		dist := sub.BFSDist(si)
		if dist[ti] == -1 {
			best = size
		}
	}
	return best
}

func TestConnectivityMatchesBruteForce(t *testing.T) {
	rng := prng.New(1)
	checked := 0
	for trial := 0; trial < 60 && checked < 25; trial++ {
		n := 4 + rng.Intn(7)
		g := graph.RandomConnected(n, rng.Intn(2*n), rng)
		s := 0
		t2 := n - 1
		if g.HasEdge(s, t2) {
			continue
		}
		cfg := stConfig(g, s, t2)
		k, paths, sides, err := stconn.Connectivity(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteConnectivity(g, s, t2)
		if k != want {
			t.Fatalf("trial %d: connectivity %d, brute force %d", trial, k, want)
		}
		if len(paths) != k {
			t.Fatalf("trial %d: %d paths for connectivity %d", trial, len(paths), k)
		}
		// Paths must be internally vertex-disjoint.
		seen := make(map[int]int)
		for _, p := range paths {
			if p[0] != s || p[len(p)-1] != t2 {
				t.Fatalf("trial %d: path does not run s..t: %v", trial, p)
			}
			for _, v := range p[1 : len(p)-1] {
				seen[v]++
				if seen[v] > 1 {
					t.Fatalf("trial %d: internal node %d shared by two paths", trial, v)
				}
			}
		}
		// Cut size equals k.
		cut := 0
		for _, side := range sides {
			if side == 1 {
				cut++
			}
		}
		if cut != k {
			t.Fatalf("trial %d: cut size %d != connectivity %d", trial, cut, k)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked", checked)
	}
}

func TestConnectivityKnownTopologies(t *testing.T) {
	// Path: connectivity 1.
	cfg := stConfig(graph.Path(6), 0, 5)
	if k, _, _, err := stconn.Connectivity(cfg); err != nil || k != 1 {
		t.Errorf("path: k=%d err=%v, want 1", k, err)
	}
	// Cycle: connectivity 2.
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg = stConfig(g, 0, 4)
	if k, _, _, err := stconn.Connectivity(cfg); err != nil || k != 2 {
		t.Errorf("cycle: k=%d err=%v, want 2", k, err)
	}
	// Figure-eight: shared node is a 1-cut between the two loops.
	fig8, err := graph.TwoCyclesSharingNode(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg = stConfig(fig8, 2, 6)
	if k, _, _, err := stconn.Connectivity(cfg); err != nil || k != 1 {
		t.Errorf("figure-eight: k=%d err=%v, want 1", k, err)
	}
}

func TestConnectivityRejectsAdjacentTerminals(t *testing.T) {
	cfg := stConfig(graph.Path(2), 0, 1)
	if _, _, _, err := stconn.Connectivity(cfg); err == nil {
		t.Error("adjacent s,t accepted")
	}
}

func TestCompleteness(t *testing.T) {
	rng := prng.New(2)
	tested := 0
	for trial := 0; trial < 40 && tested < 10; trial++ {
		n := 5 + rng.Intn(12)
		g := graph.RandomConnected(n, rng.Intn(3*n), rng)
		if g.HasEdge(0, n-1) {
			continue
		}
		cfg := stConfig(g, 0, n-1)
		cfg.AssignRandomIDs(rng)
		k, _, _, err := stconn.Connectivity(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := schemetest.New(uint64(trial))
		h.LegalAccepted(t, stconn.NewPLS(k), cfg)
		h.LegalAcceptedRPLS(t, stconn.NewRPLS(k), cfg, 15)
		tested++
	}
	if tested == 0 {
		t.Fatal("no instances tested")
	}
}

func TestProverRefusesWrongK(t *testing.T) {
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stConfig(g, 0, 4) // connectivity 2
	h := schemetest.New(1)
	h.ProverRefuses(t, stconn.NewPLS(1), cfg)
	h.ProverRefuses(t, stconn.NewPLS(3), cfg)
}

func TestSoundnessOverclaim(t *testing.T) {
	// Claiming connectivity 2 on a path (true value 1): no labeling works.
	illegal := stConfig(graph.Path(7), 0, 6)
	schemetest.New(3).RandomLabelsRejected(t, stconn.NewPLS(2), illegal, 300, 150)
}

func TestSoundnessUnderclaimTransplant(t *testing.T) {
	// A cycle has connectivity 2; claiming 1 requires exhibiting a 1-node
	// cut, which does not exist — labels from a path must fail.
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	illegalForK1 := stConfig(g, 0, 4)
	legalForK1 := stConfig(graph.Path(8), 0, 4)
	h := schemetest.New(5)
	h.TransplantRejected(t, stconn.NewPLS(1), legalForK1, illegalForK1)
	h.RandomLabelsRejected(t, stconn.NewPLS(1), illegalForK1, 300, 150)
}

func TestSoundnessMultiCrossingCut(t *testing.T) {
	// The monotonicity check: a "cut" of k+1 nodes each used once, with one
	// path weaving S→CUT→S→CUT→T, must be rejected. We approximate the
	// adversary by random-label search plus the transplant above; here we
	// additionally check a hand-crafted weave is rejected via the honest
	// labels of a different k.
	g := graph.New(6)
	// s=0 — 1 — 2 — 3 — 4 — t=5 plus shortcut 1-4: connectivity 1 (node 1
	// or 4... actually cut {1} separates? 0's only neighbor is 1: yes k=1).
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	g.MustAddEdge(1, 4)
	cfg := stConfig(g, 0, 5)
	k, _, _, err := stconn.Connectivity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("setup: k = %d, want 1", k)
	}
	schemetest.New(7).RandomLabelsRejected(t, stconn.NewPLS(2), cfg, 300, 150)
}

func TestLabelSizes(t *testing.T) {
	rng := prng.New(4)
	for _, n := range []int{16, 64} {
		g := graph.RandomConnected(n, 2*n, rng)
		if g.HasEdge(0, n-1) {
			continue
		}
		cfg := stConfig(g, 0, n-1)
		k, _, _, err := stconn.Connectivity(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// O(k log n) at the terminals, O(log n) elsewhere.
		h := schemetest.New(uint64(n))
		h.LabelBitsAtMost(t, stconn.NewPLS(k), cfg, 20+k*(16+32+34))
		certBound := 6*schemetest.Log2Ceil(20+k*90) + 24
		h.CertBitsAtMost(t, stconn.NewRPLS(k), cfg, certBound)
	}
}
