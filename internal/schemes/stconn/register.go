package stconn

import "rpls/internal/engine"

func init() {
	engine.Register(engine.Entry{
		Name:              "stconn",
		Description:       "s-t vertex connectivity equals K (extension; §5.2)",
		Det:               func(p engine.Params) engine.Scheme { return engine.FromPLS(NewPLS(p.K)) },
		Rand:              func(p engine.Params) engine.Scheme { return engine.FromRPLS(NewRPLS(p.K)) },
		DetParameterized:  true,
		RandParameterized: true,
	})
}
