// Package selfstab connects randomized proof-labeling schemes to their
// original deployment story (§1 of the paper, and [1, 9, 30]): a running
// system periodically re-verifies its certified output; when a fault
// corrupts states or labels, some node eventually outputs FALSE and
// triggers recovery.
//
// The Monitor executes rounds of randomized verification over a mutable
// configuration. For the one-sided schemes of this repository a legal,
// honestly labeled system never raises a false alarm; after a fault, each
// round independently detects it with probability ≥ 2/3 (≥ 1−3^−t with
// t-fold boosting), so detection latency is geometric — which the
// DetectionLatency helper measures.
package selfstab

import (
	"fmt"

	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/graph"
)

// StepResult reports one verification round.
type StepResult struct {
	Round     uint64
	Accepted  bool
	Rejectors []int // nodes that output FALSE and would trigger recovery
}

// Monitor drives repeated verification of a configuration. Rounds run on a
// private batched executor whose buffers are reused step to step
// (certificate generation and the per-step result still allocate); the
// bulk helpers DetectionLatency and FalseAlarmRate run many rounds per
// graph traversal through the same executor.
type Monitor struct {
	scheme engine.Scheme
	exec   *engine.Batched
	cfg    *graph.Config
	labels []core.Label
	seed   uint64
	round  uint64
}

// NewMonitor labels the configuration with the scheme's prover and returns
// a monitor ready to step. The configuration must be legal.
func NewMonitor(s core.RPLS, cfg *graph.Config, seed uint64) (*Monitor, error) {
	scheme := engine.FromRPLS(s)
	labels, err := scheme.Label(cfg)
	if err != nil {
		return nil, fmt.Errorf("selfstab: initial labeling: %w", err)
	}
	return &Monitor{
		scheme: scheme,
		exec:   engine.NewBatched(),
		cfg:    cfg,
		labels: labels,
		seed:   seed,
	}, nil
}

// Config exposes the monitored configuration for fault injection.
func (m *Monitor) Config() *graph.Config { return m.cfg }

// Round returns the number of completed verification rounds.
func (m *Monitor) Round() uint64 { return m.round }

// Step runs one randomized verification round with fresh coins.
func (m *Monitor) Step() StepResult {
	m.round++
	res := engine.Verify(m.scheme, m.cfg, m.labels,
		engine.WithSeed(m.seed+m.round), engine.WithExecutor(m.exec), engine.WithStats(true))
	out := StepResult{Round: m.round, Accepted: res.Accepted}
	for v, vote := range res.Votes {
		if !vote {
			out.Rejectors = append(out.Rejectors, v)
		}
	}
	return out
}

// Corrupt applies a fault to the configuration (states and/or topology via
// the callback). Labels are left stale, modeling a fault that struck after
// certification.
func (m *Monitor) Corrupt(fault func(cfg *graph.Config)) {
	fault(m.cfg)
}

// CorruptLabel overwrites one node's label, modeling memory corruption of
// the proof itself.
func (m *Monitor) CorruptLabel(v int, l core.Label) error {
	if v < 0 || v >= len(m.labels) {
		return fmt.Errorf("selfstab: node %d out of range", v)
	}
	m.labels[v] = l
	return nil
}

// Repair re-runs the prover on the current configuration — the "recovery
// procedure" a rejecting node launches. It fails if the configuration
// itself (not just the labels) is illegal, in which case recovery needs an
// application-level fix first.
func (m *Monitor) Repair() error {
	labels, err := m.scheme.Label(m.cfg)
	if err != nil {
		return fmt.Errorf("selfstab: repair: %w", err)
	}
	m.labels = labels
	return nil
}

// DetectionLatency steps the monitor until some node rejects, returning
// the number of rounds taken; it gives up after maxRounds (returning
// maxRounds and false). Rounds run in trial batches through the monitor's
// executor: round i draws the coins of seed + round + i exactly as i
// successive Step calls would, and the estimator's early-stop rule makes
// the executed-round count — and hence the monitor's clock — identical to
// the serial loop.
func DetectionLatency(m *Monitor, maxRounds int) (int, bool) {
	sum, err := engine.Estimate(m.scheme, m.cfg,
		engine.WithLabels(m.labels), engine.WithTrials(maxRounds),
		engine.WithSeed(m.seed+m.round+1), engine.WithExecutor(m.exec),
		engine.WithStopOnReject(true))
	if err != nil {
		// Labels are already resolved, so the estimator cannot fail; fall
		// back to the serial loop defensively.
		for i := 1; i <= maxRounds; i++ {
			if res := m.Step(); !res.Accepted {
				return i, true
			}
		}
		return maxRounds, false
	}
	m.round += uint64(sum.Trials)
	if sum.Accepted == sum.Trials {
		return maxRounds, false
	}
	return sum.Trials, true
}

// FalseAlarmRate runs rounds on an unmodified monitor and returns the
// fraction that rejected — zero for the one-sided schemes of this
// repository. Like DetectionLatency, the rounds run as trial batches with
// the exact per-round coins of the serial Step loop.
func FalseAlarmRate(m *Monitor, rounds int) float64 {
	sum, err := engine.Estimate(m.scheme, m.cfg,
		engine.WithLabels(m.labels), engine.WithTrials(rounds),
		engine.WithSeed(m.seed+m.round+1), engine.WithExecutor(m.exec))
	if err != nil {
		alarms := 0
		for i := 0; i < rounds; i++ {
			if res := m.Step(); !res.Accepted {
				alarms++
			}
		}
		return float64(alarms) / float64(rounds)
	}
	m.round += uint64(sum.Trials)
	return float64(sum.Trials-sum.Accepted) / float64(sum.Trials)
}
