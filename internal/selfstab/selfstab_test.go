package selfstab_test

import (
	"testing"

	"rpls/internal/bitstring"
	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/spanningtree"
	"rpls/internal/schemes/uniform"
	"rpls/internal/selfstab"
)

func uniformConfig(g *graph.Graph, payload []byte) *graph.Config {
	c := graph.NewConfig(g)
	for v := range c.States {
		d := make([]byte, len(payload))
		copy(d, payload)
		c.States[v].Data = d
	}
	return c
}

func TestNoFalseAlarmsOneSided(t *testing.T) {
	c := uniformConfig(graph.RandomConnected(20, 15, prng.New(1)), []byte("steady"))
	m, err := selfstab.NewMonitor(uniform.NewRPLS(), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rate := selfstab.FalseAlarmRate(m, 200); rate != 0 {
		t.Errorf("false alarm rate %v on an unperturbed system, want 0", rate)
	}
}

func TestStateCorruptionDetected(t *testing.T) {
	c := uniformConfig(graph.Path(8), []byte("payload0"))
	m, err := selfstab.NewMonitor(uniform.NewRPLS(), c, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Corrupt(func(cfg *graph.Config) {
		cfg.States[4].Data = []byte("payload1")
	})
	latency, ok := selfstab.DetectionLatency(m, 50)
	if !ok {
		t.Fatal("corruption never detected within 50 rounds")
	}
	// Per-round detection probability >= 2/3, so latency is sharply
	// concentrated; 50 rounds of slack is astronomically generous.
	if latency > 20 {
		t.Errorf("detection took %d rounds", latency)
	}
}

func TestRejectorIsNearTheFault(t *testing.T) {
	c := uniformConfig(graph.Path(9), []byte("x"))
	m, err := selfstab.NewMonitor(uniform.NewRPLS(), c, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Corrupt(func(cfg *graph.Config) {
		cfg.States[4].Data = []byte("y")
	})
	for i := 0; i < 30; i++ {
		res := m.Step()
		if res.Accepted {
			continue
		}
		for _, v := range res.Rejectors {
			if v < 3 || v > 5 {
				t.Errorf("rejector %d is not adjacent to the fault at node 4", v)
			}
		}
		return
	}
	t.Fatal("fault never detected")
}

func TestLabelCorruptionDetected(t *testing.T) {
	// Corrupt the proof, not the state: a spanning-tree label flips.
	g := graph.RandomConnected(12, 8, prng.New(4))
	c := graph.NewConfig(g)
	parents := g.SpanningTreeParents(0)
	for v, p := range parents {
		c.States[v].Parent = p
	}
	m, err := selfstab.NewMonitor(spanningtree.NewRPLS(), c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CorruptLabel(6, bitstring.FromBytes([]byte{0xFF, 0x00, 0xFF})); err != nil {
		t.Fatal(err)
	}
	if _, ok := selfstab.DetectionLatency(m, 50); !ok {
		t.Error("label corruption never detected")
	}
}

func TestRepairRestoresService(t *testing.T) {
	c := uniformConfig(graph.Path(6), []byte("v1"))
	m, err := selfstab.NewMonitor(uniform.NewRPLS(), c, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The application legitimately updates every node to v2; stale labels
	// are irrelevant for the label-free uniform scheme, so simulate with
	// the spanning-tree scheme instead... simpler: corrupt, detect, fix
	// the state, repair, and verify alarms stop.
	m.Corrupt(func(cfg *graph.Config) {
		cfg.States[2].Data = []byte("xx")
	})
	if _, ok := selfstab.DetectionLatency(m, 50); !ok {
		t.Fatal("fault not detected")
	}
	// Recovery: application fixes the state, the scheme re-proves.
	m.Corrupt(func(cfg *graph.Config) {
		cfg.States[2].Data = []byte("v1")
	})
	if err := m.Repair(); err != nil {
		t.Fatal(err)
	}
	if rate := selfstab.FalseAlarmRate(m, 100); rate != 0 {
		t.Errorf("alarms persist after repair: %v", rate)
	}
}

func TestRepairRefusesIllegalConfiguration(t *testing.T) {
	c := uniformConfig(graph.Path(4), []byte("a"))
	m, err := selfstab.NewMonitor(uniform.NewRPLS(), c, 7)
	if err != nil {
		t.Fatal(err)
	}
	m.Corrupt(func(cfg *graph.Config) {
		cfg.States[1].Data = []byte("b")
	})
	if err := m.Repair(); err == nil {
		t.Error("repair succeeded on an illegal configuration")
	}
}

func TestBoostingShortensLatency(t *testing.T) {
	// With t-fold boosting the per-round detection probability rises from
	// >= 2/3 to >= 1 − 3^−t; average latency over many faults must not
	// increase. Use a worst-case-ish fingerprint pair for a visible effect.
	mkMonitor := func(s core.RPLS, seed uint64) *selfstab.Monitor {
		c := uniformConfig(graph.Path(4), []byte{0x00, 0x00})
		m, err := selfstab.NewMonitor(s, c, seed)
		if err != nil {
			t.Fatal(err)
		}
		m.Corrupt(func(cfg *graph.Config) {
			cfg.States[2].Data = []byte{0x00, 0x01}
		})
		return m
	}
	total := func(s core.RPLS) int {
		sum := 0
		for seed := uint64(0); seed < 40; seed++ {
			m := mkMonitor(s, seed*131)
			lat, ok := selfstab.DetectionLatency(m, 200)
			if !ok {
				t.Fatal("fault not detected")
			}
			sum += lat
		}
		return sum
	}
	base := total(uniform.NewRPLS())
	boosted := total(core.Boost(uniform.NewRPLS(), 4))
	if boosted > base {
		t.Errorf("boosted latency %d exceeds base latency %d", boosted, base)
	}
}
