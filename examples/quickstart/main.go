// Quickstart: certify a spanning tree, verify it distributedly, break it,
// and watch the verifier catch the break — first with the classic
// deterministic proof labels of §1 of the paper, then with the compiled
// randomized certificates of Theorem 3.1, which are exponentially smaller
// on the wire. Both run through the unified engine API: the schemes come
// from the registry and the same round implementation serves both models.
package main

import (
	"fmt"
	"log"

	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	_ "rpls/internal/schemes/all" // registers every scheme, including "spanningtree"
)

func main() {
	// A random connected network whose parent pointers form a BFS tree.
	rng := prng.New(7)
	g := graph.RandomConnected(24, 20, rng)
	cfg := graph.NewConfig(g)
	cfg.AssignRandomIDs(rng)
	for v, port := range g.SpanningTreeParents(0) {
		cfg.States[v].Parent = port
	}
	fmt.Printf("network: %d nodes, %d edges; claim: parent pointers form a spanning tree\n",
		g.N(), g.M())

	entry, ok := engine.Lookup("spanningtree")
	if !ok {
		log.Fatal("spanningtree not registered")
	}
	det := entry.Det(engine.Params{})
	rand := entry.Rand(engine.Params{})

	// Deterministic proof-labeling scheme: label = (root id, distance).
	res, err := engine.Run(det, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[det ] accepted=%v with %d-bit labels (%d bits on the wire)\n",
		res.Accepted, res.Stats.MaxLabelBits, res.Stats.TotalWireBits)

	// Randomized scheme (Theorem 3.1): only fingerprints travel.
	labels, err := rand.Label(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rres := engine.Verify(rand, cfg, labels, engine.WithSeed(1))
	fmt.Printf("[rand] accepted=%v with %d-bit certificates (%d bits on the wire)\n",
		rres.Accepted, rres.Stats.MaxCertBits, rres.Stats.TotalWireBits)

	// Sabotage: declare a second root, turning the tree into a forest.
	bad := cfg.Clone()
	for v := 1; v < g.N(); v++ {
		if bad.States[v].Parent != 0 {
			bad.States[v].Parent = 0
			fmt.Printf("\nsabotage: node %d now claims to be a root too\n", v)
			break
		}
	}

	detLabels, err := det.Label(cfg) // stale labels from the healthy tree
	if err != nil {
		log.Fatal(err)
	}
	dres := engine.Verify(det, bad, detLabels, engine.WithStats(true))
	fmt.Printf("[det ] accepted=%v — rejecting nodes: %v\n", dres.Accepted, rejectors(dres.Votes))

	// The estimator shards trials across all cores; the summary (and its
	// Wilson interval) is bit-identical to a serial run for the same seed.
	sum, err := engine.Estimate(rand, bad, engine.WithLabels(labels),
		engine.WithTrials(400), engine.WithSeed(2), engine.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[rand] acceptance over %d coin draws: %.3f, ci95=[%.3f, %.3f] (soundness bound: <= 1/3)\n",
		sum.Trials, sum.Acceptance, sum.CILow, sum.CIHigh)
}

func rejectors(votes []bool) []int {
	var out []int
	for v, vote := range votes {
		if !vote {
			out = append(out, v)
		}
	}
	return out
}
