// Quickstart: certify a spanning tree, verify it distributedly, break it,
// and watch the verifier catch the break — first with the classic
// deterministic proof labels of §1 of the paper, then with the compiled
// randomized certificates of Theorem 3.1, which are exponentially smaller
// on the wire.
package main

import (
	"fmt"
	"log"

	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/runtime"
	"rpls/internal/schemes/spanningtree"
)

func main() {
	// A random connected network whose parent pointers form a BFS tree.
	rng := prng.New(7)
	g := graph.RandomConnected(24, 20, rng)
	cfg := graph.NewConfig(g)
	cfg.AssignRandomIDs(rng)
	for v, port := range g.SpanningTreeParents(0) {
		cfg.States[v].Parent = port
	}
	fmt.Printf("network: %d nodes, %d edges; claim: parent pointers form a spanning tree\n",
		g.N(), g.M())

	// Deterministic proof-labeling scheme: label = (root id, distance).
	det := spanningtree.NewPLS()
	res, err := runtime.RunPLS(det, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[det ] accepted=%v with %d-bit labels (%d bits on the wire)\n",
		res.Accepted, res.Stats.MaxLabelBits, res.Stats.TotalWireBits)

	// Randomized scheme (Theorem 3.1): only fingerprints travel.
	rand := spanningtree.NewRPLS()
	labels, err := rand.Label(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rres := runtime.VerifyRPLS(rand, cfg, labels, 1)
	fmt.Printf("[rand] accepted=%v with %d-bit certificates (%d bits on the wire)\n",
		rres.Accepted, rres.Stats.MaxCertBits, rres.Stats.TotalWireBits)

	// Sabotage: declare a second root, turning the tree into a forest.
	bad := cfg.Clone()
	for v := 1; v < g.N(); v++ {
		if bad.States[v].Parent != 0 {
			bad.States[v].Parent = 0
			fmt.Printf("\nsabotage: node %d now claims to be a root too\n", v)
			break
		}
	}

	detLabels, err := det.Label(cfg) // stale labels from the healthy tree
	if err != nil {
		log.Fatal(err)
	}
	dres := runtime.VerifyPLS(det, bad, detLabels)
	fmt.Printf("[det ] accepted=%v — rejecting nodes: %v\n", dres.Accepted, rejectors(dres.Votes))

	rate := runtime.EstimateAcceptance(rand, bad, labels, 400, 2)
	fmt.Printf("[rand] acceptance over 400 coin draws: %.3f (soundness bound: <= 1/3)\n", rate)
}

func rejectors(votes []bool) []int {
	var out []int
	for v, vote := range votes {
		if !vote {
			out = append(out, v)
		}
	}
	return out
}
