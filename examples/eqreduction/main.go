// eqreduction: Lemma C.1 of the paper, run end to end.
//
// Any randomized proof-labeling scheme for the Symmetry predicate can be
// turned into a 2-party protocol for EQUALITY: Alice encodes her string x
// as the graph G(x,x), Bob his y as G(y,y); each labels their half with the
// scheme's prover and simulates the verifier over the combined graph
// G(x,y), which by Claim C.2 is symmetric iff x = y. The only communication
// is the two certificates crossing the bridge edge — so certificates must
// carry Ω(log λ) bits (Lemma 3.2), which is the paper's lower bound for
// Sym.
package main

import (
	"fmt"
	"log"

	"rpls/internal/bitstring"
	"rpls/internal/schemes/symmetry"
)

func main() {
	scheme := symmetry.NewRPLS() // compiled universal scheme for Sym

	x := bitstring.FromBits([]byte{1, 0, 1, 1})
	y := bitstring.FromBits([]byte{1, 0, 0, 1})

	fmt.Println("inputs: x = 1011, y = 1001 (λ = 4)")
	eq, bits, err := symmetry.EQFromRPLS(scheme, x, x, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EQ(x,x): accepted=%v, transcript=%d bits (trivial protocol: %d bits)\n",
		eq, bits, x.Len())

	rejected := 0
	const rounds = 20
	for seed := uint64(0); seed < rounds; seed++ {
		eq, _, err := symmetry.EQFromRPLS(scheme, x, y, seed)
		if err != nil {
			log.Fatal(err)
		}
		if !eq {
			rejected++
		}
	}
	fmt.Printf("EQ(x,y): rejected %d/%d runs (soundness bound: >= 2/3)\n", rejected, rounds)

	fmt.Println()
	fmt.Println("Claim C.2 check on the underlying graphs:")
	gxx, err := symmetry.GZZ(x, x)
	if err != nil {
		log.Fatal(err)
	}
	gxy, err := symmetry.GZZ(x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Sym(G(x,x)) = %v  (equal strings -> symmetric)\n",
		symmetry.SymmetricEdge(gxx) >= 0)
	fmt.Printf("  Sym(G(x,y)) = %v  (distinct strings -> asymmetric)\n",
		symmetry.SymmetricEdge(gxy) >= 0)
}
