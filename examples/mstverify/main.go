// mstverify: the headline result of the paper (Theorem 5.1) end to end.
//
// A distributed system has computed a minimum spanning tree and must keep
// re-verifying it cheaply. Deterministic verification needs the
// Korman–Kutten Borůvka-hierarchy labels of O(log² n) bits; the compiled
// randomized scheme exchanges only O(log log n)-bit fingerprints. This
// example builds a weighted network, certifies its MST, prints both costs
// across sizes, then corrupts a weight and shows detection.
package main

import (
	"fmt"
	"log"

	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/runtime"
	"rpls/internal/schemes/mst"
)

func main() {
	fmt.Println("      n | det label bits | rand cert bits")
	fmt.Println("--------+----------------+---------------")
	for _, n := range []int{16, 64, 256, 1024} {
		cfg := buildMST(n, uint64(n))
		det := mst.NewPLS()
		labels, err := det.Label(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rand := mst.NewRPLS()
		randLabels, err := rand.Label(cfg)
		if err != nil {
			log.Fatal(err)
		}
		certBits := runtime.MaxCertBitsOver(rand, cfg, randLabels, 3, 1)
		fmt.Printf("%7d | %14d | %14d\n", n, core.MaxBits(labels), certBits)
	}

	// Corruption drill on a medium instance.
	cfg := buildMST(64, 99)
	det := mst.NewPLS()
	labels, err := det.Label(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rand := mst.NewRPLS()
	randLabels, err := rand.Label(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A link gets cheaper after certification: the certified tree is stale.
	bad := cfg.Clone()
	for _, e := range bad.G.Edges() {
		pu, _ := bad.G.PortTo(e.U, e.V)
		pv, _ := bad.G.PortTo(e.V, e.U)
		if bad.States[e.U].Parent != pu && bad.States[e.V].Parent != pv {
			if err := bad.SetEdgeWeight(e.U, e.V, -5); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nlink {%d,%d} drops to weight -5; the certified tree is no longer minimum\n", e.U, e.V)
			break
		}
	}
	fmt.Printf("predicate on corrupted network: %v\n", (mst.Predicate{}).Eval(bad))

	dres := runtime.VerifyPLS(det, bad, labels)
	fmt.Printf("[det ] accepted=%v\n", dres.Accepted)
	rate := runtime.EstimateAcceptance(rand, bad, randLabels, 300, 3)
	fmt.Printf("[rand] acceptance over 300 coin draws: %.3f\n", rate)
}

func buildMST(n int, seed uint64) *graph.Config {
	rng := prng.New(seed)
	g := graph.RandomConnected(n, n, rng)
	cfg := graph.NewConfig(g)
	cfg.AssignRandomIDs(rng)
	graph.AssignRandomWeights(cfg, int64(n*n*4), rng)
	tree, err := mst.Kruskal(cfg)
	if err != nil {
		log.Fatal(err)
	}
	adj := make([][]int, n)
	for _, e := range tree {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	visited := make([]bool, n)
	visited[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !visited[u] {
				visited[u] = true
				p, _ := cfg.G.PortTo(u, v)
				cfg.States[u].Parent = p
				queue = append(queue, u)
			}
		}
	}
	return cfg
}
