// mstverify: the headline result of the paper (Theorem 5.1) end to end.
//
// A distributed system has computed a minimum spanning tree and must keep
// re-verifying it cheaply. Deterministic verification needs the
// Korman–Kutten Borůvka-hierarchy labels of O(log² n) bits; the compiled
// randomized scheme exchanges only O(log log n)-bit fingerprints. This
// example sweeps both schemes across network sizes with engine.Sweep,
// then corrupts a weight and shows detection.
package main

import (
	"fmt"
	"log"

	"rpls/internal/engine"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/mst"
)

func main() {
	entry, ok := engine.Lookup("mst")
	if !ok {
		log.Fatal("mst not registered")
	}
	det := entry.Det(engine.Params{})
	rand := entry.Rand(engine.Params{})

	sizes := []int{16, 64, 256, 1024}
	build := func(n int, seed uint64) (*graph.Config, error) { return buildMST(n, seed) }
	// Sweeps shard their sizes across all cores; results are bit-identical
	// to a serial sweep.
	detPoints, err := engine.Sweep(engine.Fixed(det), build, sizes, engine.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}
	randPoints, err := engine.Sweep(engine.Fixed(rand), build, sizes, engine.WithTrials(3),
		engine.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("      n | det label bits | rand cert bits")
	fmt.Println("--------+----------------+---------------")
	for i := range detPoints {
		fmt.Printf("%7d | %14d | %14d\n",
			detPoints[i].N, detPoints[i].Summary.MaxLabelBits, randPoints[i].Summary.MaxCertBits)
	}

	// Corruption drill on a medium instance.
	cfg, err := buildMST(64, 99)
	if err != nil {
		log.Fatal(err)
	}
	labels, err := det.Label(cfg)
	if err != nil {
		log.Fatal(err)
	}
	randLabels, err := rand.Label(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A link gets cheaper after certification: the certified tree is stale.
	bad := cfg.Clone()
	for _, e := range bad.G.Edges() {
		pu, _ := bad.G.PortTo(e.U, e.V)
		pv, _ := bad.G.PortTo(e.V, e.U)
		if bad.States[e.U].Parent != pu && bad.States[e.V].Parent != pv {
			if err := bad.SetEdgeWeight(e.U, e.V, -5); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nlink {%d,%d} drops to weight -5; the certified tree is no longer minimum\n", e.U, e.V)
			break
		}
	}
	fmt.Printf("predicate on corrupted network: %v\n", (mst.Predicate{}).Eval(bad))

	dres := engine.Verify(det, bad, labels)
	fmt.Printf("[det ] accepted=%v\n", dres.Accepted)
	sum, err := engine.Estimate(rand, bad, engine.WithLabels(randLabels),
		engine.WithTrials(300), engine.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[rand] acceptance over %d coin draws: %.3f\n", sum.Trials, sum.Acceptance)
}

func buildMST(n int, seed uint64) (*graph.Config, error) {
	rng := prng.New(seed)
	g := graph.RandomConnected(n, n, rng)
	cfg := graph.NewConfig(g)
	cfg.AssignRandomIDs(rng)
	graph.AssignRandomWeights(cfg, int64(n*n*4), rng)
	tree, err := mst.Kruskal(cfg)
	if err != nil {
		return nil, err
	}
	adj := make([][]int, n)
	for _, e := range tree {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	visited := make([]bool, n)
	visited[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !visited[u] {
				visited[u] = true
				p, _ := cfg.G.PortTo(u, v)
				cfg.States[u].Parent = p
				queue = append(queue, u)
			}
		}
	}
	return cfg, nil
}
