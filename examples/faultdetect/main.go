// faultdetect: the deployment story from §1 of the paper — a self-
// stabilizing monitor periodically re-verifies a certified configuration;
// when a fault corrupts a node's state, some node outputs FALSE within a
// couple of rounds (probability ≥ 2/3 per round, amplifiable by boosting)
// and recovery is triggered. One-sided schemes never raise false alarms.
package main

import (
	"fmt"
	"log"

	"rpls/internal/core"
	"rpls/internal/graph"
	"rpls/internal/prng"
	"rpls/internal/schemes/uniform"
	"rpls/internal/selfstab"
)

func main() {
	// A 16-node system replicating a 32-byte configuration blob.
	rng := prng.New(21)
	g := graph.RandomConnected(16, 12, rng)
	cfg := graph.NewConfig(g)
	blob := make([]byte, 32)
	for i := range blob {
		blob[i] = byte(rng.Uint64())
	}
	for v := range cfg.States {
		d := make([]byte, len(blob))
		copy(d, blob)
		cfg.States[v].Data = d
	}

	// Monitor with 2-fold boosted fingerprint verification.
	scheme := core.Boost(uniform.NewRPLS(), 2)
	monitor, err := selfstab.NewMonitor(scheme, cfg, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase 1: healthy system, 100 verification rounds")
	if alarms := selfstab.FalseAlarmRate(monitor, 100); alarms == 0 {
		fmt.Println("  no false alarms (one-sided scheme)")
	} else {
		fmt.Printf("  unexpected false alarm rate: %.3f\n", alarms)
	}

	fmt.Println("phase 2: fault injection — node 9's replica flips a byte")
	monitor.Corrupt(func(c *graph.Config) {
		c.States[9].Data[4] ^= 0x80
	})
	for {
		res := monitor.Step()
		if res.Accepted {
			fmt.Printf("  round %d: all nodes accept (fault not sampled this round)\n", res.Round)
			continue
		}
		fmt.Printf("  round %d: nodes %v output FALSE -> recovery triggered\n",
			res.Round, res.Rejectors)
		break
	}

	fmt.Println("phase 3: recovery — state restored, labels re-proved")
	monitor.Corrupt(func(c *graph.Config) {
		copy(c.States[9].Data, blob)
	})
	if err := monitor.Repair(); err != nil {
		log.Fatal(err)
	}
	if alarms := selfstab.FalseAlarmRate(monitor, 100); alarms == 0 {
		fmt.Println("  system healthy again; 100 rounds without alarms")
	} else {
		fmt.Printf("  alarms persist: %.3f\n", alarms)
	}
}
