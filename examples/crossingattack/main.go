// crossingattack: the paper's §4 lower-bound technique as a live exploit.
//
// A verifier whose labels are shorter than log(r)/2s bits cannot tell r
// independent gadgets apart: two of them must carry identical labels
// (pigeonhole). Crossing their edges (Definition 4.2, Figure 1) rewires the
// graph — here, splicing a cycle out of a path — while every node's local
// view stays bit-identical, so the verifier's decision cannot change. The
// honest Θ(log n) scheme survives; the 3-bit scheme is fooled.
package main

import (
	"fmt"
	"log"

	"rpls/internal/crossing"
	"rpls/internal/graph"
	"rpls/internal/schemes/acyclicity"
)

func main() {
	const n = 210
	cfg := graph.NewConfig(graph.Path(n))
	gadgets := crossing.PathGadgets(n)
	fmt.Printf("instance: %d-node path (acyclic); gadget family: r = %d edges {u_3i, u_3i+1}\n",
		n, len(gadgets))
	fmt.Printf("Theorem 4.4 threshold: schemes below ½·log₂(r) ≈ %.1f bits per node are doomed\n\n",
		0.5*log2f(len(gadgets)))

	for _, bits := range []int{2, 3, 4, 8} {
		weak := crossing.ModularDistPLS{Bits: bits}
		atk, err := crossing.AttackPLS(weak, acyclicity.Predicate{}, cfg, gadgets)
		if err != nil {
			log.Fatal(err)
		}
		describe(fmt.Sprintf("%d-bit scheme", bits), atk)
	}

	honest := acyclicity.NewPLS()
	atk, err := crossing.AttackPLS(honest, acyclicity.Predicate{}, cfg, gadgets)
	if err != nil {
		log.Fatal(err)
	}
	describe("honest Θ(log n) scheme", atk)
}

func describe(name string, atk crossing.Attack) {
	fmt.Printf("%-24s labels=%3d bits  ", name, atk.LabelBits)
	if !atk.Collision {
		fmt.Println("no collision -> attack fails, scheme survives")
		return
	}
	fmt.Printf("gadgets %d,%d collide -> crossed graph has a cycle -> ", atk.I, atk.J)
	if atk.Fooled {
		fmt.Println("verifier STILL ACCEPTS (fooled)")
	} else {
		fmt.Println("verifier rejects")
	}
}

func log2f(n int) float64 {
	b := 0.0
	for v := n; v > 1; v >>= 1 {
		b++
	}
	return b
}
