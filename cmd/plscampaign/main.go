// Command plscampaign expands a declarative scenario spec into a plan of
// cells and streams them through the verification engine into a campaign
// directory (results.jsonl + manifest.jsonl + BENCH_campaign.json).
//
// Usage:
//
//	plscampaign run -spec examples/campaign/smoke.json -out out/ [-parallel 0]
//	plscampaign run ... [-metrics M.json] [-trace T.json] [-debug-addr :8797 [-debug-hold 45s]]
//	plscampaign resume -out out/ [-parallel 0]
//	plscampaign serve -spec S.json -out out/ -addr :8799 [-lease 8] [-heartbeat 3s] [-window N]
//	plscampaign work -addr http://host:8799 [-workers 0] [-name w1]
//
// run, resume, serve, and work all take the shared observability flags
// (-metrics, -trace, -debug-addr, -debug-hold) from internal/cliutil,
// identical to plsrun's.
//
//	plscampaign describe -spec examples/campaign/e1_e6.json [-cells]
//	plscampaign comm -out out/ [-min-ratio 1]
//	plscampaign tradeoff -out out/ [-assert-decreasing 2]
//	plscampaign congest -out out/ [-assert-non-increasing] [-min-separated 1]
//	plscampaign list
//
// run is idempotent: cells the directory's manifest marks complete are
// skipped, so interrupting and re-running resumes where it stopped. resume
// is run with the spec re-read from the directory itself. comm prints the
// wire-accounting aggregate (BENCH_comm.json): per-(family, size) det /
// rand / compiled bits per edge with their ratios, and -min-ratio turns the
// overall det/rand ratio into an assertion for CI. tradeoff prints the κ/t
// aggregate (BENCH_tradeoff.json): bits-per-round × t curves from the
// spec's rounds axis, and -assert-decreasing demands at least that many
// distinct schemes and families with strictly decreasing curves. congest
// prints the congestion aggregate (BENCH_congest.json): verified-bits × m
// curves from the spec's multiplicity axis, -assert-non-increasing fails
// on any curve that rises toward unicast, and -min-separated demands
// schemes with a genuine broadcast/unicast gap.
//
// serve and work distribute a campaign over HTTP: serve owns the campaign
// directory and leases contiguous cell ranges to workers; work executes
// leased cells with the ordinary engine and streams records back. Crashed
// or stalled workers are handled by lease expiry and reclaim, a killed
// coordinator restarts with `serve` against the same -out (the manifest
// is the checkpoint), and the directory stays byte-identical to a
// single-process run at any worker count. Omit -spec on serve to resume
// from the directory's own spec, exactly like `resume`.
//
// run and resume narrate progress as structured log/slog records on stdout
// (phase=plan|execute|progress|aggregate|done) and, with -metrics/-trace,
// write an internal/obs snapshot and a Chrome trace_event JSON after the
// run; -debug-addr serves expvar, pprof, /metrics, and /trace live during
// it. Telemetry never changes results: the campaign's metrics-on/off
// byte-compare test enforces it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"rpls/internal/campaign"
	"rpls/internal/campaign/fabric"
	"rpls/internal/cliutil"
	"rpls/internal/engine"
	"rpls/internal/graph"

	// Link every scheme package so the registry is complete.
	_ "rpls/internal/schemes/all"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "plscampaign:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: plscampaign run|resume|serve|work|describe|list [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "run":
		return cmdRun(rest, false)
	case "resume":
		return cmdRun(rest, true)
	case "serve":
		return cmdServe(rest)
	case "work":
		return cmdWork(rest)
	case "describe":
		return cmdDescribe(rest)
	case "comm":
		return cmdComm(rest)
	case "tradeoff":
		return cmdTradeoff(rest)
	case "congest":
		return cmdCongest(rest)
	case "list":
		return cmdList()
	default:
		return fmt.Errorf("unknown subcommand %q (run, resume, serve, work, describe, comm, tradeoff, congest, list)", cmd)
	}
}

func cmdRun(args []string, resume bool) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	specPath := fs.String("spec", "", "spec JSON file (resume reads it from -out instead)")
	out := fs.String("out", "", "campaign directory (created if missing)")
	parallel := fs.Int("parallel", 0, "worker count (0 = all cores); results are byte-identical at any level")
	obsFlags := cliutil.RegisterObs(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out directory required")
	}
	if err := obsFlags.Start(); err != nil {
		return err
	}
	var spec campaign.Spec
	var err error
	if resume {
		if spec, err = campaign.ReadSpec(*out); err != nil {
			return fmt.Errorf("resume needs an existing campaign directory: %w", err)
		}
	} else {
		if *specPath == "" {
			return fmt.Errorf("-spec file required")
		}
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		if spec, err = campaign.ParseSpec(data); err != nil {
			return err
		}
	}
	runner := &campaign.Runner{
		Dir:      *out,
		Parallel: *parallel,
		Logger:   slog.New(slog.NewTextHandler(os.Stdout, nil)),
	}
	rep, runErr := runner.Run(spec)
	if runErr = obsFlags.Finish(runErr); runErr != nil {
		return runErr
	}
	fmt.Println(rep)
	if n := rep.Errors + rep.PriorErrors; n > 0 {
		return fmt.Errorf("%d cells errored (see %s/%s)", n, *out, campaign.ResultsFile)
	}
	return nil
}

// cmdServe runs the coordinator half of a distributed campaign: it owns
// the -out directory, serves the lease protocol on -addr, and exits when
// every cell is durably written and aggregated. Restarting it against the
// same directory resumes, exactly like `plscampaign resume`.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	specPath := fs.String("spec", "", "spec JSON file (omit to resume from the spec stored in -out)")
	out := fs.String("out", "", "campaign directory (created if missing)")
	addr := fs.String("addr", "127.0.0.1:8799", "address to serve the lease protocol on")
	leaseSize := fs.Int("lease", 8, "cells per lease")
	heartbeat := fs.Duration("heartbeat", 3*time.Second, "heartbeat interval asked of workers; leases expire after 4x this")
	window := fs.Int("window", 0, "lease window in cells past the write low-water mark (0 = 4 leases)")
	linger := fs.Duration("linger", 2*time.Second, "keep serving this long after completion so workers see done and exit")
	obsFlags := cliutil.RegisterObs(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out directory required")
	}
	if err := obsFlags.Start(); err != nil {
		return err
	}
	var spec campaign.Spec
	var err error
	if *specPath == "" {
		if spec, err = campaign.ReadSpec(*out); err != nil {
			return fmt.Errorf("no -spec given and none stored in -out: %w", err)
		}
	} else {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		if spec, err = campaign.ParseSpec(data); err != nil {
			return err
		}
	}
	c, err := fabric.NewCoordinator(*out, spec, fabric.Options{
		LeaseSize: *leaseSize,
		LeaseTTL:  4 * *heartbeat,
		Window:    *window,
		Logger:    slog.New(slog.NewTextHandler(os.Stdout, nil)),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: c.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "coordinator on http://%s (lease=%d, ttl=%v, status: /v1/status)\n",
		ln.Addr(), *leaseSize, 4**heartbeat)

	waitErr := c.Wait(context.Background())
	// Linger so polling workers get a Done answer instead of a dead socket.
	if waitErr == nil && *linger > 0 {
		time.Sleep(*linger)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	select {
	case <-serveErr:
	default:
	}
	if waitErr = obsFlags.Finish(waitErr); waitErr != nil {
		return waitErr
	}
	rep, err := c.Finish()
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if n := rep.Errors + rep.PriorErrors; n > 0 {
		return fmt.Errorf("%d cells errored (see %s/%s)", n, *out, campaign.ResultsFile)
	}
	return nil
}

// cmdWork runs the worker half: it pulls leases from a coordinator,
// executes the cells, and exits when the coordinator reports done.
func cmdWork(args []string) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8799", "coordinator base URL")
	workers := fs.Int("workers", 0, "concurrent lease loops (0 = all cores)")
	name := fs.String("name", "", "worker name (default host-pid)")
	obsFlags := cliutil.RegisterObs(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obsFlags.Start(); err != nil {
		return err
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	parallel := *workers
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	w := &fabric.Worker{
		Coordinator: base,
		Name:        *name,
		Parallel:    parallel,
		Logger:      slog.New(slog.NewTextHandler(os.Stdout, nil)),
	}
	return obsFlags.Finish(w.Run(context.Background()))
}

func cmdDescribe(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ContinueOnError)
	specPath := fs.String("spec", "", "spec JSON file")
	cells := fs.Bool("cells", false, "print every cell ID instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("-spec file required")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := campaign.ParseSpec(data)
	if err != nil {
		return err
	}
	plan, err := campaign.Expand(spec)
	if err != nil {
		return err
	}
	if *cells {
		for _, c := range plan.Cells {
			fmt.Println(c.ID())
		}
		return nil
	}
	fmt.Printf("spec %s: %d cells\n", plan.Spec.Name, len(plan.Cells))
	fmt.Printf("  breakdown: %s\n", plan.Breakdown())
	fmt.Printf("  schemes:   %d axes\n", len(plan.Spec.Schemes))
	fmt.Printf("  families:  %v\n", plan.Spec.Families)
	fmt.Printf("  sizes:     %v\n", plan.Spec.Sizes)
	fmt.Printf("  seeds:     %v\n", plan.Spec.Seeds)
	fmt.Printf("  measures:  %v\n", plan.Spec.Measures)
	fmt.Printf("  rounds:    %v\n", plan.Spec.Rounds)
	fmt.Printf("  multiplicity: %v\n", plan.Spec.Multiplicity)
	fmt.Printf("  executors: %v\n", plan.Spec.Executors)
	fmt.Printf("  trials:    %d (soundness assignments: %d)\n", plan.Spec.Trials, plan.Spec.Assignments)
	limit := 12
	if len(plan.Cells) < limit {
		limit = len(plan.Cells)
	}
	for _, c := range plan.Cells[:limit] {
		fmt.Println("  ", c.ID())
	}
	if len(plan.Cells) > limit {
		fmt.Printf("   … %d more (use -cells for all)\n", len(plan.Cells)-limit)
	}
	return nil
}

// cmdComm prints the wire-accounting aggregate of a campaign directory and
// optionally asserts the overall det/rand per-edge ratio, so CI fails fast
// when a metering regression erases the paper's separation.
func cmdComm(args []string) error {
	fs := flag.NewFlagSet("comm", flag.ContinueOnError)
	out := fs.String("out", "", "campaign directory holding "+campaign.BenchCommFile)
	minRatio := fs.Float64("min-ratio", 0, "fail unless the overall det/rand bits-per-edge ratio exceeds this (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out directory required")
	}
	bench, err := campaign.ReadBenchComm(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wire accounting for spec %s: %d comm-bearing records\n", bench.Spec, bench.Records)
	fmt.Println("scheme          | family               |    n |  det b/edge | rand b/edge | comp b/edge | det/rand | det/comp")
	fmt.Println("----------------+----------------------+------+-------------+-------------+-------------+----------+---------")
	cost := func(c *campaign.CommCost) string {
		if c == nil {
			return "          -"
		}
		return fmt.Sprintf("%11.1f", c.AvgBitsPerEdge)
	}
	rat := func(r float64) string {
		if r == 0 {
			return "       -"
		}
		return fmt.Sprintf("%8.2f", r)
	}
	for _, row := range bench.Rows {
		fmt.Printf("%-15s | %-20s | %4d | %s | %s | %s | %s | %s\n",
			row.Scheme, row.Family, row.N,
			cost(row.Variants[campaign.VariantDet]),
			cost(row.Variants[campaign.VariantRand]),
			cost(row.Variants[campaign.VariantCompiled]),
			rat(row.DetRandRatio), rat(row.DetCompiledRatio))
	}
	fmt.Printf("overall (mean of paired rows): det/rand ratio %s, det/compiled ratio %s\n",
		rat(bench.DetRandRatio), rat(bench.DetCompiledRatio))
	if *minRatio > 0 {
		if bench.DetRandRatio <= *minRatio {
			return fmt.Errorf("overall det/rand bits-per-edge ratio %.3f does not exceed %.3f — wire metering regressed or the campaign measured no det/rand pair",
				bench.DetRandRatio, *minRatio)
		}
		fmt.Printf("ratio assertion passed: %.2f > %.2f\n", bench.DetRandRatio, *minRatio)
	}
	return nil
}

// cmdTradeoff prints the κ/t tradeoff aggregate of a campaign directory
// and optionally asserts its shape: -assert-decreasing N fails unless at
// least N distinct schemes and N distinct families each contribute a
// strictly decreasing bits-per-round curve, so CI catches a sharding or
// metering regression that flattens the paper's space–time tradeoff.
func cmdTradeoff(args []string) error {
	fs := flag.NewFlagSet("tradeoff", flag.ContinueOnError)
	out := fs.String("out", "", "campaign directory holding "+campaign.BenchTradeoffFile)
	assert := fs.Int("assert-decreasing", 0, "fail unless at least this many schemes AND families have strictly decreasing bits-per-round curves (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out directory required")
	}
	bench, err := campaign.ReadBenchTradeoff(*out)
	if err != nil {
		return err
	}
	fmt.Printf("κ/t tradeoff for spec %s: %d comm-bearing records, %d curves\n",
		bench.Spec, bench.Records, len(bench.Curves))
	fmt.Println("scheme          | variant  | family               |    n | bits/round by t        | strictly decreasing")
	fmt.Println("----------------+----------+----------------------+------+------------------------+--------------------")
	for _, c := range bench.Curves {
		points := ""
		for i, p := range c.Points {
			if i > 0 {
				points += " "
			}
			points += fmt.Sprintf("t=%d:%d", p.Rounds, p.BitsPerRound)
		}
		fmt.Printf("%-15s | %-8s | %-20s | %4d | %-22s | %v\n",
			c.Scheme, c.Variant, c.Family, c.N, points, c.StrictlyDecreasing)
	}
	fmt.Printf("strictly decreasing: %d curves across %d schemes and %d families\n",
		bench.DecreasingCurves, bench.DecreasingSchemes, bench.DecreasingFamilies)
	if *assert > 0 {
		if bench.DecreasingSchemes < *assert || bench.DecreasingFamilies < *assert {
			return fmt.Errorf("only %d schemes × %d families show strictly decreasing bits-per-round (want >= %d × %d) — the κ/t tradeoff regressed or the campaign has no rounds axis",
				bench.DecreasingSchemes, bench.DecreasingFamilies, *assert, *assert)
		}
		fmt.Printf("tradeoff assertion passed: %d schemes × %d families >= %d × %d\n",
			bench.DecreasingSchemes, bench.DecreasingFamilies, *assert, *assert)
	}
	return nil
}

// cmdCongest prints the congestion aggregate of a campaign directory and
// optionally asserts its shape: -assert-non-increasing fails if any
// multi-point curve's verified bits rise along the broadcast → unicast
// axis (verified-bits(m=1) >= verified-bits(m=deg) on every curve), and
// -min-separated N demands at least N distinct schemes and N families
// with a strict broadcast/unicast gap — the Patt-Shamir–Perry separation.
func cmdCongest(args []string) error {
	fs := flag.NewFlagSet("congest", flag.ContinueOnError)
	out := fs.String("out", "", "campaign directory holding "+campaign.BenchCongestFile)
	assertNonInc := fs.Bool("assert-non-increasing", false, "fail if any curve's verified bits rise along the multiplicity axis")
	minSep := fs.Int("min-separated", 0, "fail unless at least this many schemes AND families show a strict broadcast/unicast gap (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out directory required")
	}
	bench, err := campaign.ReadBenchCongest(*out)
	if err != nil {
		return err
	}
	fmt.Printf("congestion (broadcast ⇄ unicast) for spec %s: %d comm-bearing records, %d curves\n",
		bench.Spec, bench.Records, len(bench.Curves))
	fmt.Println("scheme          | variant  | family               |    n | verified bits by m               | non-incr | separated")
	fmt.Println("----------------+----------+----------------------+------+----------------------------------+----------+----------")
	for _, c := range bench.Curves {
		points := ""
		for i, p := range c.Points {
			if i > 0 {
				points += " "
			}
			if p.Multiplicity == 0 {
				points += fmt.Sprintf("m=∞:%d", p.VerifiedBits)
			} else {
				points += fmt.Sprintf("m=%d:%d", p.Multiplicity, p.VerifiedBits)
			}
		}
		fmt.Printf("%-15s | %-8s | %-20s | %4d | %-32s | %-8v | %v\n",
			c.Scheme, c.Variant, c.Family, c.N, points, c.NonIncreasing, c.Separated)
	}
	fmt.Printf("separated: %d curves across %d schemes and %d families; %d violating curves\n",
		bench.SeparatedCurves, bench.SeparatedSchemes, bench.SeparatedFamilies, bench.ViolatingCurves)
	if *assertNonInc && bench.ViolatingCurves > 0 {
		return fmt.Errorf("%d curves have verified bits RISING toward unicast — congestion metering or cap degradation regressed", bench.ViolatingCurves)
	}
	if *minSep > 0 {
		if bench.SeparatedSchemes < *minSep || bench.SeparatedFamilies < *minSep {
			return fmt.Errorf("only %d schemes × %d families show a broadcast/unicast gap (want >= %d × %d) — the congestion separation regressed or the campaign has no multiplicity axis",
				bench.SeparatedSchemes, bench.SeparatedFamilies, *minSep, *minSep)
		}
		fmt.Printf("separation assertion passed: %d schemes × %d families >= %d × %d\n",
			bench.SeparatedSchemes, bench.SeparatedFamilies, *minSep, *minSep)
	}
	if *assertNonInc {
		fmt.Println("non-increasing assertion passed: every curve falls (weakly) from broadcast to unicast")
	}
	return nil
}

func cmdList() error {
	fmt.Println("schemes (engine registry):")
	for _, e := range engine.Entries() {
		variants := ""
		if e.Det != nil {
			variants += " det"
			if !e.DetParameterized {
				variants += " compiled"
			}
		}
		if e.Rand != nil {
			variants += " rand"
		}
		fmt.Printf("  %-20s%-20s %s\n", e.Name, variants, e.Description)
	}
	fmt.Println("\ngraph families (graph registry; plus \"catalog\" for per-predicate builders):")
	for _, f := range graph.Families() {
		kind := "deterministic"
		if f.Random {
			kind = "random"
		}
		fmt.Printf("  %-20s%-15s %s\n", f.Name, kind, f.Description)
	}
	fmt.Println("\nmeasures: estimate, soundness, comm")
	fmt.Println("executors: sequential, pool, goroutines, batched")
	fmt.Println("rounds: any t >= 1 (t-PLS certificate sharding: ⌈κ/t⌉ bits per port per round)")
	fmt.Println("multiplicity: any m >= 0 (message cap per round: 1 = broadcast, 0 = unconstrained unicast)")
	return nil
}
