// Command crossattack drives the §4 crossing lower-bound attack
// interactively: pick a family and a label budget, watch the pigeonhole
// find a collision and the verifier accept an illegal configuration.
//
// Usage:
//
//	crossattack -family path -n 210 -bits 3
//	crossattack -family ring -c 64
package main

import (
	"flag"
	"fmt"
	"os"

	"rpls/internal/core"
	"rpls/internal/crossing"
	"rpls/internal/graph"
	"rpls/internal/schemes/acyclicity"
	"rpls/internal/schemes/cycle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crossattack:", err)
		os.Exit(1)
	}
}

func run() error {
	family := flag.String("family", "path", "path (Thm 5.1) or ring (Thm 5.4)")
	n := flag.Int("n", 210, "nodes (path family)")
	c := flag.Int("c", 64, "ring length (ring family; power of two)")
	bits := flag.Int("bits", 3, "label budget of the under-provisioned scheme")
	randomized := flag.Bool("rand", false, "attack the compiled randomized scheme instead")
	seed := flag.Uint64("seed", 11, "seed for sampling")
	flag.Parse()

	switch *family {
	case "path":
		cfg := graph.NewConfig(graph.Path(*n))
		gadgets := crossing.PathGadgets(*n)
		fmt.Printf("family: %d-node path, r = %d gadgets, budget %d bits/node\n",
			*n, len(gadgets), *bits)
		fmt.Printf("pigeonhole threshold: collision forced when 2^(2·bits) = %d < r = %d\n",
			1<<(2**bits), len(gadgets))
		if *randomized {
			s := core.Compile(crossing.ModularDistPLS{Bits: *bits})
			atk, err := crossing.AttackRPLSOneSided(s, acyclicity.Predicate{}, cfg, gadgets, 150, 80, *seed)
			if err != nil {
				return err
			}
			report(atk, true)
			return nil
		}
		atk, err := crossing.AttackPLS(crossing.ModularDistPLS{Bits: *bits}, acyclicity.Predicate{}, cfg, gadgets)
		if err != nil {
			return err
		}
		report(atk, false)
		return nil
	case "ring":
		g, err := graph.CycleWithHub(*c+8, *c)
		if err != nil {
			return err
		}
		cfg := graph.NewConfig(g)
		gadgets := crossing.RingGadgets(*c)
		s := crossing.ModularIndexCyclePLS{C: *c, Bits: *bits, FindCycle: cycle.FindCycleAtLeast}
		fmt.Printf("family: hub graph with %d-ring, r = %d gadgets, index mod 2^%d\n",
			*c, len(gadgets), *bits)
		atk, err := crossing.AttackPLS(s, cycle.AtLeastPredicate{C: *c}, cfg, gadgets)
		if err != nil {
			return err
		}
		report(atk, false)
		return nil
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
}

func report(atk crossing.Attack, randomized bool) {
	fmt.Printf("labels under attack: %d bits\n", atk.LabelBits)
	if !atk.Collision {
		fmt.Println("no collision found — the scheme is above the pigeonhole bound; attack failed")
		return
	}
	fmt.Printf("collision: gadgets %d and %d carry identical %s\n",
		atk.I, atk.J, map[bool]string{false: "label vectors", true: "certificate supports"}[randomized])
	fmt.Printf("crossed configuration satisfies the predicate: %v\n", atk.CrossedLegal)
	if randomized {
		fmt.Printf("crossed configuration accepted with probability %.3f\n", atk.AcceptanceRate)
	}
	if atk.Fooled {
		fmt.Println("VERDICT: verifier fooled — it accepts an illegal configuration")
	} else {
		fmt.Println("VERDICT: verifier not fooled")
	}
}
