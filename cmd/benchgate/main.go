// Command benchgate is the CI bench-regression gate: it parses `go test
// -bench` output (with -benchmem), compares every benchmark named in a
// committed baseline against its reference, and fails when a benchmark
// regresses beyond the baseline's tolerance band or disappears entirely.
//
// Usage:
//
//	go test -run NONE -bench . -benchtime 1x -count 2 -benchmem ./... | tee bench.txt
//	benchgate -bench bench.txt -baseline BENCH_baseline.json -out BENCH_trajectory.json
//	benchgate -bench bench.txt -baseline BENCH_baseline.json -update   # refresh the baseline
//
// Two bands with different teeth: allocations per op are effectively
// deterministic for this repository's benchmarks (fixed seeds, fixed
// sweeps), so the allocation band is tight and an excursion is a real
// regression; wall-clock is noisier, so its band is wider (1.5x) but
// still catches real slowdowns — the best-of-N run selection (-count
// >= 2) plus the 1ms baseline floor keep scheduler noise out of the
// gated set, which is what lets the band be this tight. The -out
// trajectory file carries every measured point next to its baseline so
// the uploaded artifact is a complete bench history entry even when the
// gate passes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed BENCH_baseline.json layout.
type Baseline struct {
	// MaxTimeRatio / MaxAllocRatio bound measured ÷ baseline per benchmark.
	MaxTimeRatio  float64                  `json:"maxTimeRatio"`
	MaxAllocRatio float64                  `json:"maxAllocRatio"`
	Benchmarks    map[string]BaselineEntry `json:"benchmarks"`
}

// BaselineEntry is one benchmark's reference point.
type BaselineEntry struct {
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// Measurement is the best observed run of one benchmark.
type Measurement struct {
	NsPerOp     float64
	AllocsPerOp int64
	Runs        int
}

// TrajectoryPoint is one benchmark's entry in the uploaded artifact.
type TrajectoryPoint struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"nsPerOp"`
	AllocsPerOp    int64   `json:"allocsPerOp"`
	Runs           int     `json:"runs"`
	BaselineNs     float64 `json:"baselineNs,omitempty"`
	BaselineAllocs int64   `json:"baselineAllocs,omitempty"`
	TimeRatio      float64 `json:"timeRatio,omitempty"`
	AllocRatio     float64 `json:"allocRatio,omitempty"`
	Status         string  `json:"status"` // ok, regressed, new
}

// Trajectory is the BENCH_trajectory.json layout.
type Trajectory struct {
	Source    string            `json:"source"`
	Regressed int               `json:"regressed"`
	Missing   []string          `json:"missing,omitempty"` // baselined but not run
	Points    []TrajectoryPoint `json:"points"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	benchPath := flag.String("bench", "", "go test -bench output to gate (required)")
	basePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
	outPath := flag.String("out", "", "write the trajectory artifact here (optional)")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	flag.Parse()
	if *benchPath == "" {
		return fmt.Errorf("-bench file required")
	}
	meas, err := parseBench(*benchPath)
	if err != nil {
		return err
	}
	if len(meas) == 0 {
		return fmt.Errorf("no benchmark results in %s", *benchPath)
	}

	if *update {
		return writeBaseline(*basePath, meas)
	}

	base, err := readBaseline(*basePath)
	if err != nil {
		return err
	}
	traj := gate(meas, base)
	traj.Source = *benchPath
	if *outPath != "" {
		data, err := json.MarshalIndent(traj, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	for _, p := range traj.Points {
		if p.Status != "ok" {
			fmt.Printf("%-50s %12.0f ns/op %8d allocs/op  [%s]\n", p.Name, p.NsPerOp, p.AllocsPerOp, p.Status)
		}
	}
	fmt.Printf("benchgate: %d benchmarks measured, %d baselined, %d regressed, %d missing\n",
		len(traj.Points), len(base.Benchmarks), traj.Regressed, len(traj.Missing))
	if len(traj.Missing) > 0 {
		return fmt.Errorf("baselined benchmarks missing from the run (deleted without updating %s?): %s",
			*basePath, strings.Join(traj.Missing, ", "))
	}
	if traj.Regressed > 0 {
		return fmt.Errorf("%d benchmarks regressed beyond the tolerance band (time ×%.1f, allocs ×%.2f)",
			traj.Regressed, base.MaxTimeRatio, base.MaxAllocRatio)
	}
	return nil
}

// minGatedNs is the baseline wall-clock floor below which the time band
// is not enforced: a sub-millisecond single-iteration measurement on a
// shared CI runner is dominated by scheduler noise, not by the code.
const minGatedNs = 1e6

// gomaxprocsSuffix strips the trailing -N GOMAXPROCS marker from a
// benchmark name ("BenchmarkFoo/n=64-8" → "BenchmarkFoo/n=64").
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts the best (fastest, then fewest-alloc) run per
// benchmark name from `go test -bench` output. A result line is the name,
// the iteration count, then (value, unit) pairs; custom metrics (the
// certbits columns some benchmarks report) sit between ns/op and the
// -benchmem pairs, so units are matched by name rather than by position.
func parseBench(path string) (map[string]Measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]Measurement{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line (e.g. "BenchmarkFoo" on its own)
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var ns float64
		var allocs int64
		seenNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if parsed, err := strconv.ParseFloat(v, 64); err == nil {
					ns, seenNs = parsed, true
				}
			case "allocs/op":
				allocs, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		if !seenNs {
			continue
		}
		cur, seen := out[name]
		if !seen {
			out[name] = Measurement{NsPerOp: ns, AllocsPerOp: allocs, Runs: 1}
			continue
		}
		cur.Runs++
		if ns < cur.NsPerOp {
			cur.NsPerOp = ns
		}
		if allocs < cur.AllocsPerOp {
			cur.AllocsPerOp = allocs
		}
		out[name] = cur
	}
	return out, sc.Err()
}

func readBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if b.MaxTimeRatio <= 0 {
		b.MaxTimeRatio = 1.5
	}
	if b.MaxAllocRatio <= 0 {
		b.MaxAllocRatio = 1.25
	}
	return b, nil
}

// gate compares measurements to the baseline. Benchmarks absent from the
// baseline are recorded as "new" but do not fail the gate — refreshing the
// baseline is a deliberate, reviewed act (-update).
func gate(meas map[string]Measurement, base Baseline) Trajectory {
	var traj Trajectory
	names := make([]string, 0, len(meas))
	for name := range meas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := meas[name]
		p := TrajectoryPoint{Name: name, NsPerOp: m.NsPerOp, AllocsPerOp: m.AllocsPerOp, Runs: m.Runs, Status: "new"}
		if ref, ok := base.Benchmarks[name]; ok {
			p.BaselineNs, p.BaselineAllocs = ref.NsPerOp, ref.AllocsPerOp
			p.Status = "ok"
			if ref.NsPerOp > 0 {
				p.TimeRatio = m.NsPerOp / ref.NsPerOp
			}
			if ref.AllocsPerOp > 0 {
				p.AllocRatio = float64(m.AllocsPerOp) / float64(ref.AllocsPerOp)
			}
			// A zero-alloc baseline is a guarantee, not a band: any
			// allocation at all is a regression (a ratio would divide by
			// zero and silently pass).
			allocRegressed := p.AllocRatio > base.MaxAllocRatio ||
				(ref.AllocsPerOp == 0 && m.AllocsPerOp > 0)
			// Wall-clock only gates benchmarks whose baseline is slow
			// enough (>= 1ms) for the band to dominate single-iteration
			// scheduler noise; fast benchmarks are gated on allocs alone.
			timeRegressed := ref.NsPerOp >= minGatedNs && p.TimeRatio > base.MaxTimeRatio
			if timeRegressed || allocRegressed {
				p.Status = "regressed"
				traj.Regressed++
			}
		}
		traj.Points = append(traj.Points, p)
	}
	for name := range base.Benchmarks {
		if _, ok := meas[name]; !ok {
			traj.Missing = append(traj.Missing, name)
		}
	}
	sort.Strings(traj.Missing)
	return traj
}

// writeBaseline regenerates the committed baseline from a run, keeping the
// default tolerance bands.
func writeBaseline(path string, meas map[string]Measurement) error {
	b := Baseline{MaxTimeRatio: 1.5, MaxAllocRatio: 1.25, Benchmarks: map[string]BaselineEntry{}}
	for name, m := range meas {
		b.Benchmarks[name] = BaselineEntry{NsPerOp: m.NsPerOp, AllocsPerOp: m.AllocsPerOp}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchgate: baseline %s rewritten with %d benchmarks\n", path, len(b.Benchmarks))
	return nil
}
