package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
BenchmarkPlain-8                	       1	   1000 ns/op	  512 B/op	   10 allocs/op
BenchmarkPlain-8                	       1	    900 ns/op	  512 B/op	    9 allocs/op
BenchmarkCustomMetric/t=1-8     	       1	   5000 ns/op	  37.00 certbits	  176224 B/op	 3851 allocs/op
BenchmarkSub/n=64-16            	       2	    700 ns/op	    0 B/op	    0 allocs/op
BenchmarkNoMem-8                	       1	    400 ns/op
PASS
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	meas, err := parseBench(writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(meas), meas)
	}
	// Best-of-count: min ns and min allocs across the two Plain runs.
	plain := meas["BenchmarkPlain"]
	if plain.NsPerOp != 900 || plain.AllocsPerOp != 9 || plain.Runs != 2 {
		t.Errorf("Plain = %+v, want best-of-2 {900, 9}", plain)
	}
	// A custom metric between ns/op and the -benchmem pairs must not
	// swallow the allocs column.
	custom := meas["BenchmarkCustomMetric/t=1"]
	if custom.NsPerOp != 5000 || custom.AllocsPerOp != 3851 {
		t.Errorf("CustomMetric = %+v, want {5000, 3851}", custom)
	}
	// The -N GOMAXPROCS suffix is stripped, sub-benchmark path kept.
	if _, ok := meas["BenchmarkSub/n=64"]; !ok {
		t.Errorf("sub-benchmark name not normalized: %+v", meas)
	}
	if m := meas["BenchmarkNoMem"]; m.NsPerOp != 400 {
		t.Errorf("NoMem = %+v, want ns parsed without -benchmem pairs", m)
	}
}

func TestGate(t *testing.T) {
	meas := map[string]Measurement{
		"BenchmarkOK":        {NsPerOp: 2.2e6, AllocsPerOp: 10},
		"BenchmarkSlow":      {NsPerOp: 99e6, AllocsPerOp: 10},
		"BenchmarkFastNoise": {NsPerOp: 99000, AllocsPerOp: 10},
		"BenchmarkAllocs":    {NsPerOp: 1000, AllocsPerOp: 20},
		"BenchmarkZeroAlloc": {NsPerOp: 1000, AllocsPerOp: 5},
		"BenchmarkBrandNew":  {NsPerOp: 1, AllocsPerOp: 1},
	}
	base := Baseline{
		MaxTimeRatio:  1.5,
		MaxAllocRatio: 1.25,
		Benchmarks: map[string]BaselineEntry{
			"BenchmarkOK":        {NsPerOp: 2e6, AllocsPerOp: 10},
			"BenchmarkSlow":      {NsPerOp: 2e6, AllocsPerOp: 10},
			"BenchmarkFastNoise": {NsPerOp: 1000, AllocsPerOp: 10}, // below the 1ms time floor
			"BenchmarkAllocs":    {NsPerOp: 1000, AllocsPerOp: 10},
			"BenchmarkZeroAlloc": {NsPerOp: 1000, AllocsPerOp: 0}, // zero-alloc guarantee
			"BenchmarkDeleted":   {NsPerOp: 1, AllocsPerOp: 1},
		},
	}
	traj := gate(meas, base)
	if traj.Regressed != 3 {
		t.Fatalf("regressed = %d, want 3 (time blowup, alloc excursion, lost zero-alloc): %+v", traj.Regressed, traj.Points)
	}
	status := map[string]string{}
	for _, p := range traj.Points {
		status[p.Name] = p.Status
	}
	want := map[string]string{
		"BenchmarkOK":        "ok",
		"BenchmarkSlow":      "regressed",
		"BenchmarkFastNoise": "ok", // noisy sub-ms wall-clock never gates
		"BenchmarkAllocs":    "regressed",
		"BenchmarkZeroAlloc": "regressed", // any alloc against a 0 baseline
		"BenchmarkBrandNew":  "new",
	}
	for name, w := range want {
		if status[name] != w {
			t.Errorf("%s status %q, want %q", name, status[name], w)
		}
	}
	if len(traj.Missing) != 1 || traj.Missing[0] != "BenchmarkDeleted" {
		t.Errorf("missing = %v, want the deleted benchmark flagged", traj.Missing)
	}
}
