// Command plsrun builds a configuration for one of the catalogued
// predicates, resolves its schemes through the engine registry, runs a
// verification round, and reports the measured verification complexity.
//
// Usage:
//
//	plsrun -scheme mst -n 64 [-seed 7] [-mode rand] [-corrupt] [-trials 200] [-exec pool]
//	plsrun -scheme mst -n 64 -parallel 8 -maxse 0.02
//	plsrun -scheme mst -n 64 -rounds 4 -multiplicity 1
//	plsrun -scheme mst -sweep 64,256,1024 -parallel 0
//	plsrun -scheme mst -n 64 -exec batched [-metrics M.json] [-trace T.json] [-debug-addr :8797]
//	plsrun -list
//
// The observability flags (-metrics, -trace, -debug-addr, -debug-hold)
// are the shared internal/cliutil block, identical across plsrun and the
// plscampaign subcommands.
//
// -exec batched additionally prints the executor's lane telemetry
// (batches, mean lane occupancy, plane-budget narrowing, fallbacks) from
// the internal/obs recorder; recording never changes results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rpls/internal/cliutil"
	"rpls/internal/core"
	"rpls/internal/engine"
	"rpls/internal/experiments"
	"rpls/internal/graph"
	"rpls/internal/obs"
	"rpls/internal/prng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plsrun:", err)
		os.Exit(1)
	}
}

func run() error {
	scheme := flag.String("scheme", "", "registry entry to run (see -list)")
	n := flag.Int("n", 32, "approximate number of nodes")
	seed := flag.Uint64("seed", 1, "seed for generation and coins")
	mode := flag.String("mode", "both", "det, rand, or both")
	corrupt := flag.Bool("corrupt", false, "corrupt the configuration after labeling")
	trials := flag.Int("trials", 200, "Monte-Carlo trials for randomized acceptance")
	parallel := flag.Int("parallel", 1, "estimator workers (0 = all cores); summaries are bit-identical at any level")
	maxSE := flag.Float64("maxse", 0, "stop an estimate once the 95% Wilson half-width is at most this (0 = off)")
	execName := flag.String("exec", "sequential", "round executor: sequential, pool, goroutines, or batched")
	rounds := flag.Int("rounds", 1, "t-PLS verification rounds: shard every certificate into t rounds of ⌈κ/t⌉ bits per port")
	multiplicity := flag.Int("multiplicity", 0, "message-multiplicity cap m per round: 1 = broadcast, 0 = unconstrained unicast")
	sweep := flag.String("sweep", "", "comma-separated sizes; measure the randomized scheme across them")
	list := flag.Bool("list", false, "list available schemes")
	obsFlags := cliutil.RegisterObs(flag.CommandLine, true)
	flag.Parse()

	if *list {
		fmt.Println("schemes:")
		for _, e := range engine.Entries() {
			fmt.Printf("  %-20s %s%s\n", e.Name, e.Description, catalogNote(e.Name))
		}
		fmt.Println("graph families (drive with cmd/plscampaign):")
		for _, f := range graph.Families() {
			fmt.Printf("  %-20s %s\n", f.Name, f.Description)
		}
		return nil
	}

	// The recorder turns on for any explicit telemetry flag (obsFlags), and
	// for the batched executor unconditionally: its lane-occupancy counters
	// are part of the human output (recording provably never changes
	// results — see internal/engine's metrics-on/off golden tests).
	if *execName == "batched" {
		obs.SetEnabled(true)
	}
	if err := obsFlags.Start(); err != nil {
		return err
	}

	reg, ok := engine.Lookup(*scheme)
	if !ok {
		return fmt.Errorf("unknown scheme %q (try -list)", *scheme)
	}
	entry, ok := experiments.LookupCatalog(*scheme)
	if !ok {
		return fmt.Errorf("scheme %q has no instance builder; drive it from Go (see examples/)", *scheme)
	}
	if (reg.Det == nil || reg.DetParameterized) && (reg.Rand == nil || reg.RandParameterized) {
		return fmt.Errorf("scheme %q is parameterized; drive it from Go (see examples/)", *scheme)
	}
	exec, err := executorFor(*execName)
	if err != nil {
		return err
	}

	var det, rand engine.Scheme
	if reg.Det != nil && !reg.DetParameterized && (*mode == "det" || *mode == "both") {
		det = reg.Det(engine.Params{})
	}
	if reg.Rand != nil && !reg.RandParameterized && (*mode == "rand" || *mode == "both") {
		rand = reg.Rand(engine.Params{})
	}

	if det == nil && rand == nil {
		return fmt.Errorf("scheme %q has no variant for mode %q the CLI can drive", *scheme, *mode)
	}

	if *rounds != 1 {
		// Shard both variants over t rounds; the verdicts are unchanged and
		// the per-port cost per round drops to ⌈κ/t⌉ (reported as portBits).
		if det != nil {
			if det, err = engine.Shard(det, *rounds); err != nil {
				return err
			}
		}
		if rand != nil {
			if rand, err = engine.Shard(rand, *rounds); err != nil {
				return err
			}
		}
	}

	if *sweep != "" {
		if *corrupt {
			return fmt.Errorf("-sweep measures honest instances and cannot be combined with -corrupt")
		}
		s := rand
		if s == nil {
			s = det
		}
		err := runSweep(s, entry, *sweep, *trials, *seed, exec, *parallel, *maxSE, *multiplicity)
		reportBatched(*execName)
		return obsFlags.Finish(err)
	}

	cfg, err := entry.Build(*n, *seed)
	if err != nil {
		return fmt.Errorf("build configuration: %w", err)
	}
	fmt.Printf("configuration: n=%d m=%d maxdeg=%d predicate=%s executor=%s\n",
		cfg.G.N(), cfg.G.M(), cfg.G.MaxDegree(), entry.Pred.Name(), exec.Name())
	if *rounds != 1 {
		fmt.Printf("verification: t=%d rounds (certificates sharded to ⌈κ/t⌉ bits per port per round)\n", *rounds)
	}
	if *multiplicity > 0 {
		fmt.Printf("verification: multiplicity cap m=%d (ports partitioned into <= m classes of identical payloads)\n", *multiplicity)
	}

	// Label before any corruption: faults strike after certification.
	var detLabels, randLabels []core.Label
	if det != nil {
		if detLabels, err = det.Label(cfg); err != nil {
			return fmt.Errorf("deterministic prover: %w", err)
		}
	}
	if rand != nil {
		if randLabels, err = rand.Label(cfg); err != nil {
			return fmt.Errorf("randomized prover: %w", err)
		}
	}

	if *corrupt {
		if err := entry.Corrupt(cfg, prng.New(*seed+1)); err != nil {
			return fmt.Errorf("corrupt: %w", err)
		}
		fmt.Printf("configuration corrupted; predicate now %v\n", entry.Pred.Eval(cfg))
	}

	var detPerEdge float64
	if det != nil {
		res := engine.Verify(det, cfg, detLabels,
			engine.WithExecutor(exec), engine.WithStats(true),
			engine.WithMultiplicity(*multiplicity))
		detPerEdge = bitsPerEdge(res.Stats)
		fmt.Printf("[det ] scheme=%s accepted=%v labelBits=%d κ=%d portBits=%d wireBits=%d messages=%d bits/edge=%.1f\n",
			det.Name(), res.Accepted, res.Stats.MaxLabelBits, res.Stats.MaxCertBits,
			res.Stats.MaxPortBits, res.Stats.TotalWireBits, res.Stats.Messages, detPerEdge)
		if !res.Accepted {
			fmt.Printf("[det ] rejecting nodes: %v\n", rejectors(res.Votes))
		}
	}
	if rand != nil {
		res := engine.Verify(rand, cfg, randLabels,
			engine.WithSeed(*seed+2), engine.WithExecutor(exec),
			engine.WithMultiplicity(*multiplicity))
		sum, err := engine.Estimate(rand, cfg, engine.WithLabels(randLabels),
			engine.WithTrials(*trials), engine.WithSeed(*seed+3), engine.WithExecutor(exec),
			engine.WithParallelism(*parallel), engine.WithMaxSE(*maxSE),
			engine.WithMultiplicity(*multiplicity))
		if err != nil {
			return fmt.Errorf("acceptance estimate: %w", err)
		}
		fmt.Printf("[rand] scheme=%s accepted=%v certBits=%d labelBits=%d portBits=%d wireBits=%d bits/edge=%.1f acceptance=%.3f ci95=[%.3f,%.3f] (%d trials)\n",
			rand.Name(), res.Accepted, res.Stats.MaxCertBits,
			res.Stats.MaxLabelBits, sum.MaxPortBits, sum.TotalBits, sum.AvgBitsPerEdge,
			sum.Acceptance, sum.CILow, sum.CIHigh, sum.Trials)
		if det != nil && sum.AvgBitsPerEdge > 0 {
			fmt.Printf("[comm] det/rand per-edge ratio %.2f (det %.1f vs rand %.1f bits/edge)\n",
				detPerEdge/sum.AvgBitsPerEdge, detPerEdge, sum.AvgBitsPerEdge)
		}
	}
	reportBatched(*execName)
	return obsFlags.Finish(nil)
}

// reportBatched prints the batched executor's lane telemetry, making the
// batch shape — occupancy, plane-budget narrowing, fallbacks — visible in
// the ordinary human output.
func reportBatched(execName string) {
	if execName != "batched" {
		return
	}
	snap := obs.TakeSnapshot()
	lanes, _ := snap.Histogram("engine.batched.lanes")
	fmt.Printf("[obs ] batched: batches=%d mean-lanes=%.1f narrowed=%d fallback=%d coinfree=%d\n",
		snap.Counter("engine.batched.batches"), lanes.Mean,
		snap.Counter("engine.batched.narrowed"), snap.Counter("engine.batched.fallback"),
		snap.Counter("engine.batched.coinfree"))
}

// bitsPerEdge is the per-directed-edge per-round cost of one measured round.
func bitsPerEdge(st engine.Stats) float64 {
	if st.Messages == 0 {
		return 0
	}
	return float64(st.TotalWireBits) / float64(st.Messages)
}

// runSweep measures one scheme across instance sizes with engine.Sweep,
// sharding the sizes across the requested workers.
func runSweep(s engine.Scheme, entry experiments.CatalogEntry, sizes string, trials int, seed uint64, exec engine.Executor, parallel int, maxSE float64, multiplicity int) error {
	var ns []int
	for _, part := range strings.Split(sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 2 {
			return fmt.Errorf("bad sweep size %q", part)
		}
		ns = append(ns, v)
	}
	points, err := engine.Sweep(engine.Fixed(s), entry.Build, ns,
		engine.WithTrials(trials), engine.WithSeed(seed), engine.WithExecutor(exec),
		engine.WithParallelism(parallel), engine.WithMaxSE(maxSE),
		engine.WithMultiplicity(multiplicity))
	if err != nil {
		return err
	}
	fmt.Printf("sweep: scheme=%s trials=%d executor=%s workers=%d\n", s.Name(), trials, exec.Name(), parallel)
	fmt.Println("      n |       m | label bits | cert bits | bits/edge | acceptance |    ci95")
	fmt.Println("--------+---------+------------+-----------+-----------+------------+---------------")
	for _, p := range points {
		fmt.Printf("%7d | %7d | %10d | %9d | %9.1f | %10.3f | [%.3f,%.3f]\n",
			p.N, p.M, p.Summary.MaxLabelBits, p.Summary.MaxCertBits, p.Summary.AvgBitsPerEdge,
			p.Summary.Acceptance, p.Summary.CILow, p.Summary.CIHigh)
	}
	return nil
}

func executorFor(name string) (engine.Executor, error) {
	switch name {
	case "sequential", "seq":
		return engine.NewSequential(), nil
	case "pool":
		return engine.NewPool(0), nil
	case "goroutines", "go":
		return engine.NewGoroutines(), nil
	case "batched":
		return engine.NewBatched(), nil
	default:
		return nil, fmt.Errorf("unknown executor %q (sequential, pool, goroutines, batched)", name)
	}
}

// catalogNote flags registry entries the CLI cannot drive end to end.
func catalogNote(name string) string {
	entry, ok := experiments.LookupCatalog(name)
	switch {
	case !ok:
		return " [no instance builder; drive from Go]"
	case entry.Det == nil && entry.Rand == nil:
		return " [parameterized; drive from Go]"
	default:
		return ""
	}
}

func rejectors(votes []bool) []int {
	var out []int
	for v, vote := range votes {
		if !vote {
			out = append(out, v)
		}
	}
	return out
}
