// Command plsrun builds a configuration for one of the catalogued
// predicates, certifies it, runs a verification round, and reports the
// measured verification complexity.
//
// Usage:
//
//	plsrun -scheme mst -n 64 [-seed 7] [-mode rand] [-corrupt] [-trials 200]
//	plsrun -list
package main

import (
	"flag"
	"fmt"
	"os"

	"rpls/internal/core"
	"rpls/internal/experiments"
	"rpls/internal/prng"
	"rpls/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plsrun:", err)
		os.Exit(1)
	}
}

func run() error {
	scheme := flag.String("scheme", "", "catalog entry to run (see -list)")
	n := flag.Int("n", 32, "approximate number of nodes")
	seed := flag.Uint64("seed", 1, "seed for generation and coins")
	mode := flag.String("mode", "both", "det, rand, or both")
	corrupt := flag.Bool("corrupt", false, "corrupt the configuration after labeling")
	trials := flag.Int("trials", 200, "Monte-Carlo trials for randomized acceptance")
	list := flag.Bool("list", false, "list available schemes")
	flag.Parse()

	if *list {
		for _, e := range experiments.Catalog() {
			fmt.Printf("%-16s %s\n", e.Name, e.Description)
		}
		return nil
	}
	entry, ok := experiments.LookupCatalog(*scheme)
	if !ok {
		return fmt.Errorf("unknown scheme %q (try -list)", *scheme)
	}
	if entry.Det == nil {
		return fmt.Errorf("scheme %q is parameterized; drive it from Go (see examples/)", *scheme)
	}

	cfg, err := entry.Build(*n, *seed)
	if err != nil {
		return fmt.Errorf("build configuration: %w", err)
	}
	fmt.Printf("configuration: n=%d m=%d maxdeg=%d predicate=%s\n",
		cfg.G.N(), cfg.G.M(), cfg.G.MaxDegree(), entry.Pred.Name())

	var detLabels, randLabels []core.Label
	if *mode == "det" || *mode == "both" {
		detLabels, err = entry.Det.Label(cfg)
		if err != nil {
			return fmt.Errorf("deterministic prover: %w", err)
		}
	}
	if (*mode == "rand" || *mode == "both") && entry.Rand != nil {
		randLabels, err = entry.Rand.Label(cfg)
		if err != nil {
			return fmt.Errorf("randomized prover: %w", err)
		}
	}

	if *corrupt {
		if err := entry.Corrupt(cfg, prng.New(*seed+1)); err != nil {
			return fmt.Errorf("corrupt: %w", err)
		}
		fmt.Printf("configuration corrupted; predicate now %v\n", entry.Pred.Eval(cfg))
	}

	if detLabels != nil {
		res := runtime.VerifyPLS(entry.Det, cfg, detLabels)
		fmt.Printf("[det ] scheme=%s accepted=%v labelBits=%d wireBits=%d messages=%d\n",
			entry.Det.Name(), res.Accepted, res.Stats.MaxLabelBits,
			res.Stats.TotalWireBits, res.Stats.Messages)
		if !res.Accepted {
			fmt.Printf("[det ] rejecting nodes: %v\n", rejectors(res.Votes))
		}
	}
	if randLabels != nil {
		res := runtime.VerifyRPLS(entry.Rand, cfg, randLabels, *seed+2)
		rate := runtime.EstimateAcceptance(entry.Rand, cfg, randLabels, *trials, *seed+3)
		fmt.Printf("[rand] scheme=%s accepted=%v certBits=%d labelBits=%d acceptance=%.3f (%d trials)\n",
			entry.Rand.Name(), res.Accepted, res.Stats.MaxCertBits,
			res.Stats.MaxLabelBits, rate, *trials)
	}
	return nil
}

func rejectors(votes []bool) []int {
	var out []int
	for v, vote := range votes {
		if !vote {
			out = append(out, v)
		}
	}
	return out
}
