// Command plsvet runs the repository's custom static-analysis suite
// (internal/analysis/plsvet) over the module: the determinism, metering,
// registry, map-order, and hot-path contracts the golden byte-compares and
// the benchgate only check dynamically. CI runs it as part of the lint job;
// a finding fails the build.
//
// Usage:
//
//	go run ./cmd/plsvet ./...     # analyze the whole module (the default)
//	go run ./cmd/plsvet -list     # print the suite and each contract
//
// Exit status: 0 when clean, 1 on findings, 2 on a load or usage error.
// Diagnostics print as file:line:col: analyzer: message, one per line.
// Exceptions are granted per line with `//plsvet:allow <analyzer> — why`;
// see DESIGN.md, "Static invariants".
package main

import (
	"flag"
	"fmt"
	"os"

	"rpls/internal/analysis/plsvet"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: plsvet [-list] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range plsvet.Suite() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	// The loader always analyzes whole packages of the enclosing module;
	// the only accepted pattern is ./... (or nothing, meaning the same).
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "plsvet: unsupported pattern %q (only ./... is supported)\n", arg)
			os.Exit(2)
		}
	}

	diags, err := plsvet.CheckModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "plsvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "plsvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
