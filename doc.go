// Package rpls is a complete, executable reproduction of "Randomized
// Proof-Labeling Schemes" (Baruch, Fraigniaud, Patt-Shamir, PODC 2015).
//
// A proof-labeling scheme certifies a global predicate of a network
// configuration with per-node labels checked in one communication round; a
// randomized scheme exchanges only short random certificates derived from
// the labels. This module implements the full stack: the network model with
// port numberings, deterministic and randomized schemes for every predicate
// the paper studies (spanning tree, acyclicity, MST, biconnectivity, cycle
// thresholds, k-flow, symmetry, uniformity, coloring, leader), the
// Theorem 3.1 compiler that shrinks any deterministic scheme's
// communication exponentially, the universal schemes of Lemma 3.3 and
// Corollary 3.4, the edge-crossing lower-bound machinery of §4 with
// constructive pigeonhole attacks, a goroutine-per-node verification
// runtime, and a self-stabilization monitor.
//
// Entry points:
//
//   - internal/core       — the PLS/RPLS model, compiler, universal schemes, boosting
//   - internal/schemes/…  — one package per predicate
//   - internal/runtime    — distributed verification rounds
//   - internal/crossing   — lower-bound attacks
//   - internal/experiments — the E1–E15 harness behind EXPERIMENTS.md
//   - cmd/plsrun, cmd/experiments, cmd/crossattack — CLIs
//   - examples/           — runnable walkthroughs
//
// See README.md for a tour and DESIGN.md for the paper-to-code map.
package rpls
