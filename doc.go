// Package rpls is a complete, executable reproduction of "Randomized
// Proof-Labeling Schemes" (Baruch, Fraigniaud, Patt-Shamir, PODC 2015).
//
// A proof-labeling scheme certifies a global predicate of a network
// configuration with per-node labels checked in one communication round; a
// randomized scheme exchanges only short random certificates derived from
// the labels. This module implements the full stack: the network model with
// port numberings, deterministic and randomized schemes for every predicate
// the paper studies (spanning tree, acyclicity, MST, biconnectivity, cycle
// thresholds, k-flow, symmetry, uniformity, coloring, leader), the
// Theorem 3.1 compiler that shrinks any deterministic scheme's
// communication exponentially, the universal schemes of Lemma 3.3 and
// Corollary 3.4, the edge-crossing lower-bound machinery of §4 with
// constructive pigeonhole attacks, a unified verification engine with
// pluggable executors and multi-round (t-PLS) certificate sharding — the
// paper's space–time tradeoff, t rounds of ⌈κ/t⌉ bits per port — and a
// self-stabilization monitor.
//
// Entry points:
//
//   - internal/engine     — the verification API: the unified Scheme
//     abstraction (one round shape for both models), the Sequential / Pool /
//     Goroutines executors with exact wire accounting (bits per port per
//     round, identical across executors), the MultiRound extension running
//     t-round verification with round-indexed metering (engine.Shard wraps
//     any registered scheme via core.ShardCompile / core.ShardPLS), the
//     trial-parallel Run / Estimate /
//     Soundness / Sweep batch entry points (Wilson confidence intervals,
//     early stopping, bit-identical summaries at every parallelism level),
//     and the name → constructor Registry that every scheme package
//     self-registers into
//   - internal/campaign   — the scenario workload machine: declarative JSON
//     specs expand into deterministic cross products of schemes × graph
//     families × sizes × seeds × adversaries × measures (acceptance,
//     soundness, communication) × verification rounds, and a parallel
//     scheduler streams them into append-only JSONL results with a
//     resumable manifest and the BENCH_campaign.json / BENCH_comm.json /
//     BENCH_tradeoff.json aggregates (byte-identical output at any worker
//     count)
//   - internal/core       — the PLS/RPLS model of §2.2, compiler, universal
//     schemes, boosting
//   - internal/schemes/…  — one package per predicate; each registers its
//     schemes with the engine from init
//   - internal/crossing   — lower-bound attacks
//   - internal/experiments — the E1–E21 harness behind EXPERIMENTS.md, and
//     the instance catalog (builders + corruptors) the CLIs drive
//   - internal/selfstab   — periodic re-verification and fault detection
//   - internal/analysis/plsvet — the static gate over the engine's
//     contracts: five go/ast+go/types analyzers (detrand, maporder,
//     hotalloc, register, meterflow) enforce that deterministic packages
//     touch no ambient randomness or clocks, map iteration never feeds
//     order-sensitive output, //pls:hotpath functions stay
//     allocation-free, every scheme package self-registers and is linked
//     by internal/schemes/all, and the engine's wire meters are
//     read-only outside internal/engine; run it with
//     `go run ./cmd/plsvet ./...`, suppress a justified site with
//     `//plsvet:allow <analyzer> — reason`
//   - internal/graph      — the §2.1 network model, plus the name → builder
//     family registry (gnp, grid, torus, hypercube, dregular, powerlawtree,
//     barbell, …) behind the campaign scenario axis
//   - cmd/plsrun, cmd/experiments, cmd/crossattack, cmd/plscampaign,
//     cmd/plsvet — CLIs;
//     plsrun -list enumerates the scheme and family registries, prints
//     per-edge wire costs, and -rounds t runs any scheme sharded;
//     plscampaign run/resume/describe/comm/tradeoff/list drives campaign
//     specs and asserts the det/rand communication ratio and the κ/t
//     bits-per-round curves; plsvet is the static-invariant gate
//   - examples/           — runnable walkthroughs
//
// See DESIGN.md for the paper-to-code map and the engine architecture.
package rpls
