module rpls

go 1.24
